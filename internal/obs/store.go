package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// TraceStore assembles completed spans into whole traces and tail-samples
// them into a bounded ring for the debug plane (GET /v1/debug/traces).
//
// Tail sampling keeps the traces worth looking at after the fact: any trace
// carrying an `error`, `shed`, `quarantine`, or explicit `keep` annotation
// is always kept, as is any trace whose root duration lands at or above the
// running p99 (or an explicit SlowUS floor); the unremarkable rest is kept
// with probability SampleRate. Keeping the decision at trace completion —
// rather than at span start — is what lets a 429-then-retry trace or a p99
// outlier survive a 1% sample rate.
//
// A trace completes when its root span (zero parent) ends. Traces whose
// root lives in another process (a server receiving a remote traceparent)
// complete after IdleCutoff without new spans. Fold spans recorded by the
// coalescer form their own single-span traces that link into request
// traces; the store indexes those links so Trace(id) returns the request's
// spans plus every fold span that folded one of its submissions.
type TraceStore struct {
	capacity   int
	sampleRate float64
	slowUS     float64
	maxActive  int
	idleCutoff time.Duration
	rand       func() float64
	now        func() time.Time

	mu        sync.Mutex
	active    map[TraceID]*activeTrace
	ring      []*keptTrace
	head      int
	byID      map[TraceID]*keptTrace
	linkedBy  map[TraceID][]*keptTrace
	rootDur   *Histogram
	lastSweep time.Time
}

// StoreConfig configures a TraceStore; zero fields take defaults.
type StoreConfig struct {
	// Capacity bounds the kept-trace ring (default 256).
	Capacity int
	// SampleRate is the keep probability for unremarkable traces
	// (default 0.01).
	SampleRate float64
	// SlowUS, when > 0, always keeps traces whose root duration is at least
	// this many microseconds, in addition to the dynamic p99 rule.
	SlowUS float64
	// MaxActive bounds in-flight trace assembly (default 1024); beyond it
	// the most idle active trace is finalized early.
	MaxActive int
	// IdleCutoff finalizes traces with no new spans for this long, for
	// traces whose root span ends in another process (default 2s).
	IdleCutoff time.Duration
	// Rand and Now are injectable for tests.
	Rand func() float64
	Now  func() time.Time
}

type activeTrace struct {
	spans    []SpanEvent
	lastSeen time.Time
}

type keptTrace struct {
	id      TraceID
	spans   []SpanEvent
	reason  string
	root    string
	startUS float64
	durUS   float64
	links   []TraceID
}

func (kt *keptTrace) hasLink(id TraceID) bool {
	for _, l := range kt.links {
		if l == id {
			return true
		}
	}
	return false
}

// rootDurBuckets cover root-span durations in microseconds, 50µs..1s.
var rootDurBuckets = []float64{
	50, 100, 250, 500, 1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000, 500000, 1e6,
}

// Tail-sampling outcome counters, by keep reason.
var (
	obsTraceDropped = Default.Counter("trace_store_traces_total", L("decision", "dropped"))
	obsTraceKept    = map[string]*Counter{
		"error":      Default.Counter("trace_store_traces_total", L("decision", "kept_error")),
		"shed":       Default.Counter("trace_store_traces_total", L("decision", "kept_shed")),
		"quarantine": Default.Counter("trace_store_traces_total", L("decision", "kept_quarantine")),
		"keep":       Default.Counter("trace_store_traces_total", L("decision", "kept_annotated")),
		"slow":       Default.Counter("trace_store_traces_total", L("decision", "kept_slow")),
		"sampled":    Default.Counter("trace_store_traces_total", L("decision", "kept_sampled")),
	}
)

// keepKeys are the span annotation keys that force a trace to be kept.
// Order matters: the first key found anywhere in the trace names the reason.
var keepKeys = []string{"error", "quarantine", "shed", "keep"}

// NewTraceStore returns a store ready to be installed as a Tracer sink.
func NewTraceStore(cfg StoreConfig) *TraceStore {
	st := &TraceStore{
		capacity:   cfg.Capacity,
		sampleRate: cfg.SampleRate,
		slowUS:     cfg.SlowUS,
		maxActive:  cfg.MaxActive,
		idleCutoff: cfg.IdleCutoff,
		rand:       cfg.Rand,
		now:        cfg.Now,
		active:     make(map[TraceID]*activeTrace),
		byID:       make(map[TraceID]*keptTrace),
		linkedBy:   make(map[TraceID][]*keptTrace),
		rootDur:    newHistogram(rootDurBuckets),
	}
	if st.capacity <= 0 {
		st.capacity = 256
	}
	if st.sampleRate <= 0 {
		st.sampleRate = 0.01
	}
	if st.maxActive <= 0 {
		st.maxActive = 1024
	}
	if st.idleCutoff <= 0 {
		st.idleCutoff = 2 * time.Second
	}
	if st.rand == nil {
		st.rand = randFloat
	}
	if st.now == nil {
		st.now = time.Now
	}
	return st
}

// RecordSpan implements SpanSink: it files the span under its trace and
// finalizes the trace when the root span ends.
func (st *TraceStore) RecordSpan(ev SpanEvent) {
	if ev.Trace.IsZero() {
		return
	}
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	if kt, ok := st.byID[ev.Trace]; ok {
		// Late span for an already-kept trace: the root can finalize the
		// trace before every child is recorded (a server handler span ends
		// only after its response has already unblocked the client's root).
		// Merge instead of starting a phantom second trace.
		kt.spans = append(kt.spans, ev)
		for _, l := range ev.Links {
			if !kt.hasLink(l.Trace) && l.Trace != kt.id {
				kt.links = append(kt.links, l.Trace)
				st.linkedBy[l.Trace] = append(st.linkedBy[l.Trace], kt)
			}
		}
		return
	}
	at := st.active[ev.Trace]
	if at == nil {
		if len(st.active) >= st.maxActive {
			st.evictIdlestLocked()
		}
		at = &activeTrace{}
		st.active[ev.Trace] = at
	}
	at.spans = append(at.spans, ev)
	at.lastSeen = now
	if ev.Parent.IsZero() {
		st.finalizeLocked(ev.Trace, at)
	}
	if now.Sub(st.lastSweep) >= st.idleCutoff {
		st.lastSweep = now
		for id, a := range st.active {
			if now.Sub(a.lastSeen) >= st.idleCutoff {
				st.finalizeLocked(id, a)
			}
		}
	}
}

// Sweep finalizes traces idle for at least IdleCutoff (and, with force, all
// active traces). Servers call it on shutdown; tests call it to flush
// boundary traces deterministically.
func (st *TraceStore) Sweep(force bool) {
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	for id, a := range st.active {
		if force || now.Sub(a.lastSeen) >= st.idleCutoff {
			st.finalizeLocked(id, a)
		}
	}
}

// evictIdlestLocked finalizes the active trace with the oldest lastSeen.
func (st *TraceStore) evictIdlestLocked() {
	var victim TraceID
	var vt *activeTrace
	for id, a := range st.active {
		if vt == nil || a.lastSeen.Before(vt.lastSeen) {
			victim, vt = id, a
		}
	}
	if vt != nil {
		st.finalizeLocked(victim, vt)
	}
}

func (st *TraceStore) finalizeLocked(id TraceID, at *activeTrace) {
	delete(st.active, id)
	spans := at.spans
	if len(spans) == 0 {
		return
	}
	root := rootOf(spans)
	st.rootDur.Observe(root.DurUS)
	reason := st.decide(spans, root)
	if reason == "" {
		obsTraceDropped.Inc()
		return
	}
	if c := obsTraceKept[reason]; c != nil {
		c.Inc()
	}
	kt := &keptTrace{
		id:      id,
		spans:   spans,
		reason:  reason,
		root:    root.Name,
		startUS: root.StartUS,
		durUS:   root.DurUS,
	}
	seen := map[TraceID]bool{id: true}
	for i := range spans {
		for _, l := range spans[i].Links {
			if !seen[l.Trace] {
				seen[l.Trace] = true
				kt.links = append(kt.links, l.Trace)
			}
		}
	}
	// Insert into the FIFO ring, evicting the oldest kept trace when full.
	if len(st.ring) < st.capacity {
		st.ring = append(st.ring, kt)
	} else {
		st.removeIndexLocked(st.ring[st.head])
		st.ring[st.head] = kt
		st.head++
		if st.head == st.capacity {
			st.head = 0
		}
	}
	st.byID[id] = kt
	for _, l := range kt.links {
		st.linkedBy[l] = append(st.linkedBy[l], kt)
	}
}

func (st *TraceStore) removeIndexLocked(old *keptTrace) {
	delete(st.byID, old.id)
	for _, l := range old.links {
		refs := st.linkedBy[l]
		for i, kt := range refs {
			if kt == old {
				refs = append(refs[:i], refs[i+1:]...)
				break
			}
		}
		if len(refs) == 0 {
			delete(st.linkedBy, l)
		} else {
			st.linkedBy[l] = refs
		}
	}
}

// rootOf picks the trace's root span: the zero-parent span if present,
// otherwise the earliest-starting span (a boundary trace whose true root
// lives in another process).
func rootOf(spans []SpanEvent) *SpanEvent {
	root := &spans[0]
	for i := range spans {
		e := &spans[i]
		if e.Parent.IsZero() {
			return e
		}
		if e.StartUS < root.StartUS {
			root = e
		}
	}
	return root
}

// decide returns the keep reason, or "" to drop.
func (st *TraceStore) decide(spans []SpanEvent, root *SpanEvent) string {
	for _, key := range keepKeys {
		for i := range spans {
			if _, ok := spans[i].Arg(key); ok {
				return key
			}
		}
	}
	if st.slowUS > 0 && root.DurUS >= st.slowUS {
		return "slow"
	}
	if st.rootDur.Count() >= 100 {
		if p99 := st.rootDur.Quantile(0.99); root.DurUS >= p99 {
			return "slow"
		}
	}
	if st.rand() < st.sampleRate {
		return "sampled"
	}
	return ""
}

// Trace returns every span of the kept trace id, plus the spans of other
// kept traces that link into it (coalescer folds), sorted by start time.
func (st *TraceStore) Trace(id TraceID) ([]SpanEvent, bool) {
	st.mu.Lock()
	kt, ok := st.byID[id]
	var spans []SpanEvent
	if ok {
		spans = append(spans, kt.spans...)
	}
	for _, linker := range st.linkedBy[id] {
		for i := range linker.spans {
			for _, l := range linker.spans[i].Links {
				if l.Trace == id {
					spans = append(spans, linker.spans[i])
					break
				}
			}
		}
	}
	st.mu.Unlock()
	if len(spans) == 0 {
		return nil, false
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	return spans, true
}

// TraceSummary is one kept trace's directory entry.
type TraceSummary struct {
	TraceID string  `json:"trace_id"`
	Root    string  `json:"root"`
	Reason  string  `json:"reason"`
	Spans   int     `json:"spans"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Links   int     `json:"links"`
}

// Summaries lists kept traces, oldest first.
func (st *TraceStore) Summaries() []TraceSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TraceSummary, 0, len(st.ring))
	emit := func(kt *keptTrace) {
		out = append(out, TraceSummary{
			TraceID: kt.id.String(),
			Root:    kt.root,
			Reason:  kt.reason,
			Spans:   len(kt.spans),
			StartUS: kt.startUS,
			DurUS:   kt.durUS,
			Links:   len(kt.links),
		})
	}
	if len(st.ring) < st.capacity {
		for _, kt := range st.ring {
			emit(kt)
		}
		return out
	}
	for _, kt := range st.ring[st.head:] {
		emit(kt)
	}
	for _, kt := range st.ring[:st.head] {
		emit(kt)
	}
	return out
}

// Len returns the number of kept traces.
func (st *TraceStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.ring)
}

// Handler serves the debug plane: a JSON directory of kept traces, and
// ?id=<32 hex> for one trace as Chrome trace_event JSON (the same schema
// WriteChromeTrace emits, so the file drops straight into Perfetto).
func (st *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := ParseTraceID(idStr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			spans, ok := st.Trace(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(chromeFrom(spans))
			return
		}
		sums := st.Summaries()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Kept   int            `json:"kept"`
			Traces []TraceSummary `json:"traces"`
		}{Kept: len(sums), Traces: sums})
	})
}
