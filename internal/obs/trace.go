package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync/atomic"
)

// Trace identity follows the W3C Trace Context model: a 16-byte trace ID
// shared by every span of one distributed operation, and an 8-byte span ID
// per operation segment. IDs travel between processes in the `traceparent`
// HTTP header and inside a process via context.Context, so a phone's report
// can be followed from the client retry loop through a 429 shed, the
// Retry-After retry, the accepting handler, and (via span links) the async
// coalescer fold that finally lands it.

// TraceID is a 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is an 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("obs: trace id %q: all-zero is invalid", s)
	}
	return id, nil
}

// SpanContext identifies one span within one trace, plus the sampling
// decision that downstream hops must honor.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// IsValid reports whether both IDs are non-zero.
func (sc SpanContext) IsValid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// TraceparentHeader is the W3C Trace Context header name (lowercase per
// spec; Go's http.Header canonicalizes on set/get either way).
const TraceparentHeader = "traceparent"

// Traceparent renders the context as a version-00 traceparent value:
// 00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>. Built in one
// allocation — it runs once per outbound request on the traced hot path.
func (sc SpanContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.Trace[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.Span[:])
	b[52], b[53] = '-', '0'
	b[54] = '0'
	if sc.Sampled {
		b[54] = '1'
	}
	return string(b[:])
}

// ParseTraceparent parses a version-00 traceparent header value. It is
// strict about lengths and hex but tolerant of future versions (any 2-hex
// version except the invalid "ff" is accepted, per the W3C spec's
// forward-compatibility rule).
func ParseTraceparent(v string) (SpanContext, bool) {
	// Layout: vv-tttttttttttttttttttttttttttttttt-ssssssssssssssss-ff
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	if len(v) > 55 && v[55] != '-' {
		// Future versions may append -extra fields; version 00 must not.
		return SpanContext{}, false
	}
	if v[:2] == "ff" {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(v[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(v[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(v[53:55])); err != nil {
		return SpanContext{}, false
	}
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, true
}

// ctxKey keys the active SpanContext in a context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sc as the active span context.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanContextFrom extracts the active span context, if any.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.IsValid()
}

// ID generation: a splitmix64 stream seeded once from crypto/rand. One
// atomic add per 8 bytes of ID, no locks, and distinct across processes
// with overwhelming probability.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		// crypto/rand failing is effectively fatal elsewhere; here a fixed
		// seed only risks cross-process ID collisions, so degrade quietly.
		idState.Store(0x9E3779B97F4A7C15)
	}
}

func nextRand64() uint64 {
	z := idState.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for {
		binary.BigEndian.PutUint64(id[:8], nextRand64())
		binary.BigEndian.PutUint64(id[8:], nextRand64())
		if !id.IsZero() {
			return id
		}
	}
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	for {
		binary.BigEndian.PutUint64(id[:], nextRand64())
		if !id.IsZero() {
			return id
		}
	}
}

// randFloat returns a uniform float64 in [0, 1) from the ID stream; used for
// head-sampling decisions so samplers need no extra state.
func randFloat() float64 {
	return float64(nextRand64()>>11) / float64(1<<53)
}

// SetSampleRate sets the head-sampling probability in [0, 1] applied by
// ShouldSample to new root traces. The default (unset) is 1: every root
// sampled. Inbound requests carrying a sampled traceparent bypass head
// sampling — the upstream decision wins.
func (t *Tracer) SetSampleRate(rate float64) {
	if math.IsNaN(rate) || rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	// Stored as bits+1 so the zero value distinguishes "unset" (rate 1).
	t.sampleBits.Store(math.Float64bits(rate) + 1)
}

// SampleRate returns the configured head-sampling probability.
func (t *Tracer) SampleRate() float64 {
	b := t.sampleBits.Load()
	if b == 0 {
		return 1
	}
	return math.Float64frombits(b - 1)
}

// ShouldSample draws one head-sampling decision for a new root trace.
func (t *Tracer) ShouldSample() bool {
	b := t.sampleBits.Load()
	if b == 0 {
		return true
	}
	rate := math.Float64frombits(b - 1)
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return randFloat() < rate
}
