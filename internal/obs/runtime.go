package obs

import (
	"math"
	"net/http"
	"runtime/metrics"
)

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// runtimeSamples maps exported gauge names to runtime/metrics sample names.
// Heap, goroutine count, and GC activity are the signals that matter when a
// fusion node starts struggling under load.
var runtimeSamples = []struct {
	gauge  string
	sample string
}{
	{"go_heap_objects_bytes", "/memory/classes/heap/objects:bytes"},
	{"go_memory_total_bytes", "/memory/classes/total:bytes"},
	{"go_goroutines", "/sched/goroutines:goroutines"},
	{"go_gc_cycles_total", "/gc/cycles/total:gc-cycles"},
}

// RegisterRuntimeGauges registers process gauges sourced from runtime/metrics
// on r: heap bytes, total memory, goroutine count, GC cycle count, and an
// approximate total GC pause time. Values are read at exposition time, so a
// scrape always sees current state.
func RegisterRuntimeGauges(r *Registry) {
	for _, rs := range runtimeSamples {
		sample := rs.sample
		r.GaugeFunc(rs.gauge, func() float64 {
			s := []metrics.Sample{{Name: sample}}
			metrics.Read(s)
			switch s[0].Value.Kind() {
			case metrics.KindUint64:
				return float64(s[0].Value.Uint64())
			case metrics.KindFloat64:
				return s[0].Value.Float64()
			}
			return 0
		})
	}
	r.GaugeFunc("go_gc_pause_seconds_total", func() float64 {
		s := []metrics.Sample{{Name: "/gc/pauses:seconds"}}
		metrics.Read(s)
		if s[0].Value.Kind() != metrics.KindFloat64Histogram {
			return 0
		}
		h := s[0].Value.Float64Histogram()
		if h == nil {
			return 0
		}
		// Approximate the pause total from bucket midpoints; the runtime
		// exposes pauses only as a distribution. Outer bucket edges are
		// ±Inf — fall back to the finite edge there.
		var total float64
		for i, n := range h.Counts {
			if n == 0 {
				continue
			}
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			var mid float64
			switch {
			case isFinite(lo) && isFinite(hi):
				mid = lo + (hi-lo)/2
			case isFinite(lo):
				mid = lo
			case isFinite(hi):
				mid = hi
			default:
				continue
			}
			total += float64(n) * mid
		}
		return total
	})
}

// MetricsHandler serves r in the Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
