package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// The SLO engine tracks declarative per-route objectives with multi-window
// burn rates, the standard SRE construction: the burn rate over a window is
// the observed bad-request fraction divided by the budgeted bad fraction
// (1 - target), so burn 1.0 consumes exactly the error budget, and a
// fast-burn alert requires BOTH the short (5m) and long (1h) windows to
// burn hot — the short window proves the problem is still happening, the
// long window proves it is big enough to matter and debounces blips.
//
// Counters are fed directly by the serving middleware (Record), not scraped
// from the registry: one atomic add per request per matching objective.
// Tick snapshots the cumulative counters on a schedule; window burn rates
// diff the live counters against the newest snapshot at least window-old
// (partial windows fall back to the oldest snapshot, so a freshly started
// engine behaves like a short window until history accumulates).

// SLOKind discriminates objective types.
type SLOKind string

const (
	// SLOAvailability counts a request good unless it failed (5xx).
	SLOAvailability SLOKind = "availability"
	// SLOLatency counts a request good if it succeeded within ThresholdS.
	SLOLatency SLOKind = "latency"
)

// Objective is one declarative service-level objective on a route.
type Objective struct {
	// Name labels gauges and reports (e.g. "submit_batch-availability").
	Name string
	// Route matches the serving middleware's route tag.
	Route string
	Kind  SLOKind
	// Target is the good fraction objective in (0, 1), e.g. 0.999.
	Target float64
	// ThresholdS is the latency bar in seconds (SLOLatency only).
	ThresholdS float64
}

// Validate reports whether the objective is well-formed.
func (o Objective) Validate() error {
	if o.Name == "" || o.Route == "" {
		return fmt.Errorf("obs: objective needs name and route")
	}
	if !(o.Target > 0 && o.Target < 1) {
		return fmt.Errorf("obs: objective %s: target %v outside (0,1)", o.Name, o.Target)
	}
	switch o.Kind {
	case SLOAvailability:
	case SLOLatency:
		if !(o.ThresholdS > 0) {
			return fmt.Errorf("obs: objective %s: latency threshold %v must be > 0", o.Name, o.ThresholdS)
		}
	default:
		return fmt.Errorf("obs: objective %s: unknown kind %q", o.Name, o.Kind)
	}
	return nil
}

// Burn-rate thresholds (multiples of budget-neutral consumption).
const (
	FastBurn = 14.4 // 2% of a 30-day budget in 1h; page-worthy
	SlowBurn = 6.0  // 5% of a 30-day budget in 6h; degraded
)

// SLOConfig configures an engine; zero windows default to 5m/1h.
type SLOConfig struct {
	Objectives  []Objective
	ShortWindow time.Duration
	LongWindow  time.Duration
	Now         func() time.Time // injectable for tests
}

type sloSample struct {
	t           time.Time
	good, total uint64
}

type sloTracker struct {
	obj         Objective
	good, total atomic.Uint64

	mu      sync.Mutex
	samples []sloSample
}

// SLOEngine evaluates a set of objectives against request outcomes.
type SLOEngine struct {
	shortWin time.Duration
	longWin  time.Duration
	now      func() time.Time

	objs    []*sloTracker
	byRoute map[string][]*sloTracker

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSLOEngine builds an engine. Invalid objectives error out up front.
func NewSLOEngine(cfg SLOConfig) (*SLOEngine, error) {
	e := &SLOEngine{
		shortWin: cfg.ShortWindow,
		longWin:  cfg.LongWindow,
		now:      cfg.Now,
		byRoute:  make(map[string][]*sloTracker),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if e.shortWin <= 0 {
		e.shortWin = 5 * time.Minute
	}
	if e.longWin <= 0 {
		e.longWin = time.Hour
	}
	if e.longWin < e.shortWin {
		return nil, fmt.Errorf("obs: long window %v < short window %v", e.longWin, e.shortWin)
	}
	if e.now == nil {
		e.now = time.Now
	}
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("obs: no objectives")
	}
	start := e.now()
	seen := make(map[string]bool)
	for _, o := range cfg.Objectives {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("obs: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		tr := &sloTracker{obj: o}
		// A zero baseline sample makes partial windows well-defined from the
		// first request.
		tr.samples = append(tr.samples, sloSample{t: start})
		e.objs = append(e.objs, tr)
		e.byRoute[o.Route] = append(e.byRoute[o.Route], tr)
	}
	return e, nil
}

// Objectives returns the configured objectives in registration order.
func (e *SLOEngine) Objectives() []Objective {
	out := make([]Objective, len(e.objs))
	for i, tr := range e.objs {
		out[i] = tr.obj
	}
	return out
}

// Record feeds one request outcome to every objective on route. It is one
// atomic add per matching objective — safe and cheap on the serving path.
func (e *SLOEngine) Record(route string, failed bool, latencyS float64) {
	for _, tr := range e.byRoute[route] {
		tr.total.Add(1)
		good := !failed
		if good && tr.obj.Kind == SLOLatency && latencyS > tr.obj.ThresholdS {
			good = false
		}
		if good {
			tr.good.Add(1)
		}
	}
}

// Tick snapshots cumulative counters for window arithmetic. Call it on a
// schedule (Start) or manually in tests; staleness only widens the
// effective windows, it never loses requests.
func (e *SLOEngine) Tick() {
	now := e.now()
	keepAfter := now.Add(-e.longWin - e.shortWin)
	for _, tr := range e.objs {
		good, total := tr.good.Load(), tr.total.Load()
		tr.mu.Lock()
		tr.samples = append(tr.samples, sloSample{t: now, good: good, total: total})
		// Prune history, always retaining at least one sample older than the
		// long window (or the oldest available) as the diff base.
		i := 0
		for i < len(tr.samples)-1 && tr.samples[i+1].t.Before(keepAfter) {
			i++
		}
		if i > 0 {
			tr.samples = append(tr.samples[:0], tr.samples[i:]...)
		}
		tr.mu.Unlock()
	}
}

// Start ticks the engine every interval until Close.
func (e *SLOEngine) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	go func() {
		defer close(e.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Tick()
			case <-e.stop:
				return
			}
		}
	}()
}

// Close stops the background ticker, if one was started.
func (e *SLOEngine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
}

// burn returns the burn rate of tr over the trailing window ending now.
func (e *SLOEngine) burn(tr *sloTracker, window time.Duration, now time.Time) float64 {
	good, total := tr.good.Load(), tr.total.Load()
	cutoff := now.Add(-window)
	tr.mu.Lock()
	base := tr.samples[0]
	for _, s := range tr.samples[1:] {
		if s.t.After(cutoff) {
			break
		}
		base = s
	}
	tr.mu.Unlock()
	dTotal := total - base.total
	if dTotal == 0 {
		return 0
	}
	dBad := dTotal - (good - base.good)
	badFrac := float64(dBad) / float64(dTotal)
	return badFrac / (1 - tr.obj.Target)
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Name            string  `json:"name"`
	Route           string  `json:"route"`
	Kind            string  `json:"kind"`
	Target          float64 `json:"target"`
	Good            uint64  `json:"good"`
	Total           uint64  `json:"total"`
	BurnShort       float64 `json:"burn_short"`
	BurnLong        float64 `json:"burn_long"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Status          string  `json:"status"`
}

// SLOReport is the engine's full evaluated state.
type SLOReport struct {
	Status      string            `json:"status"`
	ShortWindow string            `json:"short_window"`
	LongWindow  string            `json:"long_window"`
	Objectives  []ObjectiveStatus `json:"objectives"`
}

// Report evaluates every objective. The overall Status is the worst
// objective status: "ok", "degraded" (slow burn on both windows, or budget
// exhausted), or "unhealthy" (fast burn on both windows).
func (e *SLOEngine) Report() SLOReport {
	now := e.now()
	rep := SLOReport{
		Status:      "ok",
		ShortWindow: fmtWindow(e.shortWin),
		LongWindow:  fmtWindow(e.longWin),
	}
	worst := 0
	for _, tr := range e.objs {
		bs := e.burn(tr, e.shortWin, now)
		bl := e.burn(tr, e.longWin, now)
		remaining := 1 - bl
		st := "ok"
		rank := 0
		switch {
		case bs >= FastBurn && bl >= FastBurn:
			st, rank = "unhealthy", 2
		case (bs >= SlowBurn && bl >= SlowBurn) || remaining <= 0:
			st, rank = "degraded", 1
		}
		if rank > worst {
			worst = rank
		}
		rep.Objectives = append(rep.Objectives, ObjectiveStatus{
			Name:            tr.obj.Name,
			Route:           tr.obj.Route,
			Kind:            string(tr.obj.Kind),
			Target:          tr.obj.Target,
			Good:            tr.good.Load(),
			Total:           tr.total.Load(),
			BurnShort:       round4(bs),
			BurnLong:        round4(bl),
			BudgetRemaining: round4(remaining),
			Status:          st,
		})
	}
	switch worst {
	case 2:
		rep.Status = "unhealthy"
	case 1:
		rep.Status = "degraded"
	}
	return rep
}

// Status returns just the overall status string.
func (e *SLOEngine) Status() string { return e.Report().Status }

// RegisterGauges exposes slo_error_budget_remaining{slo=} and
// slo_burn_rate{slo=,window=} gauges on r, evaluated at scrape time.
func (e *SLOEngine) RegisterGauges(r *Registry) {
	r.SetHelp("slo_error_budget_remaining", "Fraction of the long-window error budget not yet consumed (1 = untouched, <=0 = exhausted).")
	r.SetHelp("slo_burn_rate", "Error budget burn rate over the trailing window (1 = budget-neutral).")
	short, long := fmtWindow(e.shortWin), fmtWindow(e.longWin)
	for _, tr := range e.objs {
		tr := tr
		r.GaugeFunc("slo_error_budget_remaining", func() float64 {
			return 1 - e.burn(tr, e.longWin, e.now())
		}, L("slo", tr.obj.Name))
		r.GaugeFunc("slo_burn_rate", func() float64 {
			return e.burn(tr, e.shortWin, e.now())
		}, L("slo", tr.obj.Name), L("window", short))
		r.GaugeFunc("slo_burn_rate", func() float64 {
			return e.burn(tr, e.longWin, e.now())
		}, L("slo", tr.obj.Name), L("window", long))
	}
}

// fmtWindow renders a duration compactly ("5m", "1h", "90s").
func fmtWindow(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%gs", d.Seconds())
	}
}

func round4(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	return math.Round(v*1e4) / 1e4
}
