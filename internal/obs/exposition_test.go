package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expoLine is one parsed sample line.
type expoLine struct {
	name     string // full sample name (may carry _bucket/_sum/_count suffix)
	labels   map[string]string
	value    string
	exemplar string // raw exemplar suffix after " # ", "" when absent
}

var exemplarRe = regexp.MustCompile(`^\{trace_id="[0-9a-f]{32}"\} -?[0-9][0-9eE+.\-]*$`)

// parseSampleLine splits `name{labels} value # {exemplar} exval`.
func parseSampleLine(t *testing.T, line string) expoLine {
	t.Helper()
	out := expoLine{labels: map[string]string{}}
	rest := line
	if i := strings.Index(rest, " # "); i >= 0 {
		out.exemplar = rest[i+3:]
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		out.name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			t.Fatalf("unbalanced braces: %q", line)
		}
		for _, kv := range splitLabels(t, rest[i+1:j]) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 || len(kv) < eq+3 || kv[eq+1] != '"' || kv[len(kv)-1] != '"' {
				t.Fatalf("malformed label %q in %q", kv, line)
			}
			out.labels[kv[:eq]] = unescapeLabel(kv[eq+2 : len(kv)-1])
		}
		rest = rest[j+1:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			t.Fatalf("no value: %q", line)
		}
		out.name = rest[:sp]
		rest = rest[sp:]
	}
	out.value = strings.TrimSpace(rest)
	if out.value == "" {
		t.Fatalf("empty value: %q", line)
	}
	return out
}

// splitLabels splits k="v",k2="v2" on commas outside quotes/escapes.
func splitLabels(t *testing.T, s string) []string {
	t.Helper()
	var parts []string
	start, inQ, esc := 0, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inQ = !inQ
		case c == ',' && !inQ:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	if inQ || esc {
		t.Fatalf("unterminated quote/escape in labels %q", s)
	}
	return append(parts, s[start:])
}

func unescapeLabel(v string) string {
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(v)
}

// checkExposition runs the structural conformance sweep over one rendered
// registry: HELP-before-TYPE ordering, one TYPE per family with all samples
// contiguous, histogram +Inf/_count/_sum consistency, and exemplar syntax.
// It returns the parsed samples for caller-specific assertions.
func checkExposition(t *testing.T, out string) []expoLine {
	t.Helper()
	var samples []expoLine
	typeSeen := map[string]string{}
	current := "" // family owning subsequent sample lines
	pendingHelp := ""
	inFamily := func(name string) bool {
		return name == current || name == current+"_bucket" ||
			name == current+"_sum" || name == current+"_count"
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			f := strings.Fields(line)
			if len(f) < 4 { // # HELP name text...
				t.Fatalf("HELP without text: %q", line)
			}
			if pendingHelp != "" {
				t.Fatalf("two HELP lines in a row at %q", line)
			}
			pendingHelp = f[2]
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE: %q", line)
			}
			name, typ := f[2], f[3]
			if pendingHelp != "" && pendingHelp != name {
				t.Fatalf("HELP for %q not followed by its TYPE (got %q)", pendingHelp, name)
			}
			pendingHelp = ""
			if _, dup := typeSeen[name]; dup {
				t.Fatalf("duplicate TYPE for %q", name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown type %q", typ)
			}
			typeSeen[name] = typ
			current = name
		default:
			if pendingHelp != "" {
				t.Fatalf("HELP %q not followed by TYPE", pendingHelp)
			}
			s := parseSampleLine(t, line)
			if !inFamily(s.name) {
				t.Fatalf("sample %q outside its family block (current %q)", s.name, current)
			}
			if s.exemplar != "" {
				if typeSeen[current] != "histogram" || !strings.HasSuffix(s.name, "_bucket") {
					t.Fatalf("exemplar on non-bucket line %q", line)
				}
				if !exemplarRe.MatchString(s.exemplar) {
					t.Fatalf("malformed exemplar %q", s.exemplar)
				}
			}
			samples = append(samples, s)
		}
	}
	// Histogram families: +Inf present, buckets cumulative, _count/_sum agree.
	for name, typ := range typeSeen {
		if typ != "histogram" {
			continue
		}
		// Group bucket samples by their non-le label set.
		type hkey struct{ labels string }
		byKey := map[hkey][]expoLine{}
		counts := map[hkey]string{}
		sums := map[hkey]bool{}
		keyOf := func(s expoLine) hkey {
			var parts []string
			for k, v := range s.labels {
				if k != "le" {
					parts = append(parts, k+"="+v)
				}
			}
			// Order-insensitive join for small label sets.
			for i := 0; i < len(parts); i++ {
				for j := i + 1; j < len(parts); j++ {
					if parts[j] < parts[i] {
						parts[i], parts[j] = parts[j], parts[i]
					}
				}
			}
			return hkey{labels: strings.Join(parts, ",")}
		}
		for _, s := range samples {
			switch s.name {
			case name + "_bucket":
				byKey[keyOf(s)] = append(byKey[keyOf(s)], s)
			case name + "_count":
				counts[keyOf(s)] = s.value
			case name + "_sum":
				sums[keyOf(s)] = true
			}
		}
		for k, buckets := range byKey {
			last := buckets[len(buckets)-1]
			if last.labels["le"] != "+Inf" {
				t.Fatalf("%s{%s}: final bucket le=%q, want +Inf", name, k.labels, last.labels["le"])
			}
			prev := int64(-1)
			for _, bl := range buckets {
				n, err := strconv.ParseInt(bl.value, 10, 64)
				if err != nil || n < prev {
					t.Fatalf("%s{%s}: non-cumulative bucket %q after %d", name, k.labels, bl.value, prev)
				}
				prev = n
			}
			if counts[k] != last.value {
				t.Fatalf("%s{%s}: _count %s != +Inf bucket %s", name, k.labels, counts[k], last.value)
			}
			if !sums[k] {
				t.Fatalf("%s{%s}: missing _sum", name, k.labels)
			}
		}
	}
	return samples
}

// TestExpositionConformance builds a registry exercising every series kind —
// nasty label values, HELP text, histograms with and without exemplars —
// and runs the full conformance sweep, plus a label-escaping round trip.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	nasty := "a\\b\"c\nd"
	r.SetHelp("requests_total", "Requests by outcome.\nSecond line.")
	r.Counter("requests_total", L("route", nasty)).Add(3)
	r.Counter("requests_total", L("route", "plain")).Add(5)
	r.Gauge("queue_depth").Set(7.5)
	r.GaugeFunc("build_info", func() float64 { return 1 }, L("version", "v1"))
	r.SetHelp("latency_seconds", "Request latency.")
	h := r.Histogram("latency_seconds", LatencyBuckets, L("route", "submit"))
	trace := NewTraceID()
	h.ObserveTrace(0.003, trace)
	h.ObserveTrace(99, trace) // +Inf bucket exemplar
	h.Observe(0.0002)
	r.Histogram("plain_hist", []float64{1, 2}).Observe(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	samples := checkExposition(t, out)

	// Label escaping round-trips through the parser.
	var found bool
	for _, s := range samples {
		if s.name == "requests_total" && s.labels["route"] == nasty {
			found = true
		}
	}
	if !found {
		t.Errorf("nasty label value did not round-trip:\n%s", out)
	}
	// The exemplar trace ID is the one we attached.
	if !strings.Contains(out, `# {trace_id="`+trace.String()+`"}`) {
		t.Errorf("exemplar trace id missing:\n%s", out)
	}
	// HELP precedes TYPE for the annotated families.
	if !strings.Contains(out, "# HELP requests_total Requests by outcome.\\nSecond line.\n# TYPE requests_total counter") {
		t.Errorf("HELP/TYPE ordering or escaping wrong:\n%s", out)
	}
}

// TestExpositionConformanceDefault sweeps the process-wide Default registry
// (whatever instrumentation has registered by test time) through the same
// conformance checks — every registered series must render validly.
func TestExpositionConformanceDefault(t *testing.T) {
	var sb strings.Builder
	if err := Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, sb.String())
}
