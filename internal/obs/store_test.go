package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// storeTracer wires a fresh tracer to a fresh store.
func storeTracer(cfg StoreConfig) (*Tracer, *TraceStore) {
	tr := &Tracer{}
	st := NewTraceStore(cfg)
	tr.SetSink(st)
	tr.Enable()
	return tr, st
}

// TestStoreKeepAnnotated: traces carrying error/shed/quarantine annotations
// are always kept; unremarkable traces follow the sample rate.
func TestStoreKeepAnnotated(t *testing.T) {
	rand := 1.0 // never probabilistically sample
	tr, st := storeTracer(StoreConfig{Rand: func() float64 { return rand }})
	defer tr.Disable()

	for _, key := range []string{"error", "shed", "quarantine", "keep"} {
		sp := tr.Start("op-"+key, "test")
		sp.Annotate(key, "1")
		sp.End()
	}
	plain := tr.Start("op-plain", "test")
	plain.End()

	if st.Len() != 4 {
		t.Fatalf("kept %d traces, want the 4 annotated", st.Len())
	}
	for _, s := range st.Summaries() {
		if s.Reason == "sampled" || s.Reason == "" {
			t.Errorf("trace %s kept for %q", s.TraceID, s.Reason)
		}
	}
	// Now let the sampler pass: the plain trace is kept as "sampled".
	rand = 0.0
	tr.Start("op-plain2", "test").End()
	sums := st.Summaries()
	last := sums[len(sums)-1]
	if last.Root != "op-plain2" || last.Reason != "sampled" {
		t.Errorf("sampled trace = %+v", last)
	}
}

// TestStoreSlowKeep: an explicit SlowUS floor forces slow traces in even
// when the sampler would drop them.
func TestStoreSlowKeep(t *testing.T) {
	tr, st := storeTracer(StoreConfig{SlowUS: 1, Rand: func() float64 { return 1 }})
	defer tr.Disable()
	sp := tr.Start("slowop", "test")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if st.Len() != 1 || st.Summaries()[0].Reason != "slow" {
		t.Fatalf("slow trace not kept: %+v", st.Summaries())
	}
}

// TestStoreLinkedTraces: a fold-style span in its own trace that links into
// a kept request trace is returned by Trace(requestID).
func TestStoreLinkedTraces(t *testing.T) {
	tr, st := storeTracer(StoreConfig{Rand: func() float64 { return 1 }})
	defer tr.Disable()

	ctx, req := tr.StartCtx(context.Background(), "server:submit_batch", "cloud")
	reqSC, _ := SpanContextFrom(ctx)
	req.Annotate("error", "boom") // force keep
	req.End()

	fold := tr.Start("coalesce:fold", "cloud", L("keep", "fold"))
	fold.Link(reqSC)
	fold.End()

	spans, ok := st.Trace(reqSC.Trace)
	if !ok {
		t.Fatal("request trace not found")
	}
	var haveFold bool
	for _, s := range spans {
		if s.Name == "coalesce:fold" {
			haveFold = true
			if len(s.Links) == 0 || s.Links[0].Trace != reqSC.Trace {
				t.Errorf("fold span links = %+v", s.Links)
			}
		}
	}
	if !haveFold {
		t.Fatalf("fold span not stitched into request trace; got %d spans", len(spans))
	}
}

// TestStoreRingEviction: the kept ring is bounded and evicts oldest-first,
// cleaning up the byID and link indexes.
func TestStoreRingEviction(t *testing.T) {
	tr, st := storeTracer(StoreConfig{Capacity: 2, Rand: func() float64 { return 1 }})
	defer tr.Disable()

	var ids []TraceID
	for i := 0; i < 3; i++ {
		sp := tr.Start("op", "test")
		sp.Annotate("keep", "x")
		ids = append(ids, sp.Context().Trace)
		sp.End()
	}
	if st.Len() != 2 {
		t.Fatalf("ring holds %d, want 2", st.Len())
	}
	if _, ok := st.Trace(ids[0]); ok {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range ids[1:] {
		if _, ok := st.Trace(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
}

// TestStoreBoundarySweep: a trace whose root lives elsewhere (every local
// span has a parent) finalizes via the idle sweep, not a root end.
func TestStoreBoundarySweep(t *testing.T) {
	tr, st := storeTracer(StoreConfig{Rand: func() float64 { return 1 }})
	defer tr.Disable()

	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	_, srv := tr.StartCtx(ContextWithSpan(context.Background(), remote), "server:submit", "cloud")
	srv.Annotate("error", "500")
	srv.End()

	if st.Len() != 0 {
		t.Fatal("boundary trace finalized before sweep")
	}
	st.Sweep(true)
	if st.Len() != 1 {
		t.Fatalf("sweep kept %d traces, want 1", st.Len())
	}
	if _, ok := st.Trace(remote.Trace); !ok {
		t.Error("boundary trace not retrievable by remote trace id")
	}
}

// TestStoreHandler covers the debug plane: directory listing, single-trace
// Chrome export, 404 on unknown, 400 on malformed.
func TestStoreHandler(t *testing.T) {
	tr, st := storeTracer(StoreConfig{Rand: func() float64 { return 1 }})
	defer tr.Disable()
	sp := tr.Start("op", "test")
	sp.Annotate("error", "x")
	id := sp.Context().Trace
	sp.End()

	ts := httptest.NewServer(st.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var dir struct {
		Kept   int            `json:"kept"`
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dir.Kept != 1 || len(dir.Traces) != 1 || dir.Traces[0].TraceID != id.String() {
		t.Fatalf("directory = %+v", dir)
	}

	resp, err = ts.Client().Get(ts.URL + "?id=" + id.String())
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(chrome.TraceEvents) != 1 || chrome.TraceEvents[0].Ph != "X" {
		t.Fatalf("chrome export = %+v", chrome)
	}
	if chrome.TraceEvents[0].Args["trace_id"] != id.String() {
		t.Errorf("export args = %v", chrome.TraceEvents[0].Args)
	}

	if resp, _ = ts.Client().Get(ts.URL + "?id=" + NewTraceID().String()); resp.StatusCode != 404 {
		t.Errorf("unknown id: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ = ts.Client().Get(ts.URL + "?id=zzz"); resp.StatusCode != 400 {
		t.Errorf("bad id: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestStoreActiveBound: exceeding MaxActive finalizes the idlest in-flight
// trace instead of growing without bound.
func TestStoreActiveBound(t *testing.T) {
	now := time.Unix(0, 0)
	tr := &Tracer{}
	st := NewTraceStore(StoreConfig{
		MaxActive: 4,
		Rand:      func() float64 { return 1 },
		Now:       func() time.Time { now = now.Add(time.Millisecond); return now },
	})
	tr.SetSink(st)
	tr.Enable()
	defer tr.Disable()

	// Feed spans from 16 distinct traces that never see their root end.
	for i := 0; i < 16; i++ {
		remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
		_, sp := tr.StartCtx(ContextWithSpan(context.Background(), remote), "server:op", "cloud")
		sp.End()
	}
	st.mu.Lock()
	n := len(st.active)
	st.mu.Unlock()
	if n > 4 {
		t.Fatalf("active traces = %d, want <= MaxActive 4", n)
	}
}
