package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRuntimeGaugesAndHandler(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	r.Counter("app_things_total").Inc()

	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"go_goroutines", "go_heap_objects_bytes", "go_memory_total_bytes",
		"go_gc_cycles_total", "go_gc_pause_seconds_total", "app_things_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	// A live process has at least one goroutine; the gauge must be > 0.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "go_goroutines ") {
			if strings.TrimPrefix(line, "go_goroutines ") == "0" {
				t.Errorf("go_goroutines = 0")
			}
		}
	}
}
