// Package obs is the stdlib-only observability toolkit: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms), lightweight
// span tracing exportable as Chrome trace_event JSON, Prometheus text
// exposition, and runtime-sourced process gauges.
//
// Design constraints, in order:
//
//  1. Hot-path instrumentation must be allocation-free. Callers obtain metric
//     handles once (package-level vars) and then only touch atomics: Counter
//     and Gauge are a single atomic word, Histogram.Observe is one bucket
//     increment plus a count/sum update over preallocated buckets.
//  2. No third-party dependencies: exposition speaks the Prometheus text
//     format directly and traces serialize to the Chrome trace_event schema,
//     so standard tooling (Prometheus, chrome://tracing, Perfetto) consumes
//     the output without any client library.
//  3. Instrumentation never changes results. Metrics are write-only from the
//     pipeline's perspective; spans are disabled unless a collector opts in.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair, rendered as key="value" in exposition.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is ready to
// use, but counters are normally obtained from a Registry so they export.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; uncontended it succeeds first try).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf overflow
// bucket. Bounds are fixed at registration so Observe never allocates.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, excluding +Inf
	buckets []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	ex      []atomic.Pointer[exemplar] // per-bucket exemplars; last slot is +Inf
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds:  bs,
		buckets: make([]atomic.Uint64, len(bs)),
		ex:      make([]atomic.Pointer[exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the branch history is
	// stable for a steady workload, so this beats binary search in practice
	// and keeps the function trivially allocation-free.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// inside the bucket where the cumulative count crosses q. Observations are
// assumed non-negative (the first bucket interpolates from 0); values in the
// +Inf bucket clamp to the largest finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) || q <= 0 || q > 1 {
		return math.NaN()
	}
	target := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= target && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(target-cum)/n
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets spans 0.1 ms .. 10 s, suited to both per-stage pipeline
// timings and HTTP request latencies.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NISBuckets covers normalized innovation squared values: a consistent filter
// sits near 1, the default gate rejects at 25.
var NISBuckets = []float64{0.1, 0.25, 0.5, 1, 2, 4, 8, 16, 25, 50, 100}

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric series.
type entry struct {
	name   string // base metric name
	labels string // rendered `key="value",...` or ""
	kind   kind

	c  *Counter
	g  *Gauge
	gf func() float64
	h  *Histogram
}

// Registry holds metric series and renders them in the Prometheus text
// format. Get-or-create methods are safe for concurrent use; handles should
// be fetched once and cached by hot paths.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*entry
	help  map[string]string // metric family name -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry), help: make(map[string]string)}
}

// SetHelp attaches HELP text to a metric family, emitted as a `# HELP` line
// immediately before the family's `# TYPE` line.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// Default is the process-wide registry all built-in instrumentation uses.
var Default = NewRegistry()

// renderLabels builds the canonical `k="v",...` form, sorted by key so the
// same label set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the entry for (name, labels), creating it with mk on first use.
// Registering the same series with a different kind panics: that is a
// programmer error, and silently returning a mismatched handle would corrupt
// both series.
func (r *Registry) get(name string, labels []Label, k kind, mk func() *entry) *entry {
	key := name + "\x00" + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != k && !(e.kind == kindGaugeFunc && k == kindGauge) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, e.kind))
		}
		return e
	}
	e := mk()
	e.name = name
	e.labels = renderLabels(labels)
	e.kind = k
	r.byKey[key] = e
	return e
}

// Counter returns the counter series (name, labels), creating it on first
// use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.get(name, labels, kindCounter, func() *entry { return &entry{c: &Counter{}} }).c
}

// Gauge returns the gauge series (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.get(name, labels, kindGauge, func() *entry { return &entry{g: &Gauge{}} }).g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (e.g. runtime stats). Re-registering replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	e := r.get(name, labels, kindGaugeFunc, func() *entry { return &entry{} })
	r.mu.Lock()
	e.gf = fn
	r.mu.Unlock()
}

// Histogram returns the histogram series (name, labels) with the given
// bucket upper bounds, creating it on first use. The first registration's
// buckets win; later calls return the existing histogram.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	return r.get(name, labels, kindHistogram, func() *entry { return &entry{h: newHistogram(buckets)} }).h
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format, sorted by name then labels, with one # TYPE line per
// metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.byKey))
	for _, e := range r.byKey {
		entries = append(entries, e)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	var b strings.Builder
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			if h, ok := help[e.name]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(h))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
			lastName = e.name
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", series(e.name, e.labels), e.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", series(e.name, e.labels), formatFloat(e.g.Value()))
		case kindGaugeFunc:
			v := math.NaN()
			if e.gf != nil {
				v = e.gf()
			}
			fmt.Fprintf(&b, "%s %s\n", series(e.name, e.labels), formatFloat(v))
		case kindHistogram:
			writeHistogram(&b, e)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// series renders name{labels} (or the bare name).
func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// seriesLe renders name_bucket with the le label appended after any series
// labels, matching Prometheus convention.
func seriesLe(name, labels, le string) string {
	if labels == "" {
		return fmt.Sprintf(`%s_bucket{le="%s"}`, name, le)
	}
	return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, name, labels, le)
}

func writeHistogram(b *strings.Builder, e *entry) {
	h := e.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s %d", seriesLe(e.name, e.labels, formatFloat(bound)), cum)
		appendExemplar(b, h.exemplarAt(i))
		b.WriteByte('\n')
	}
	cum += h.inf.Load()
	fmt.Fprintf(b, "%s %d", seriesLe(e.name, e.labels, "+Inf"), cum)
	appendExemplar(b, h.exemplarAt(len(h.bounds)))
	b.WriteByte('\n')
	fmt.Fprintf(b, "%s %s\n", series(e.name+"_sum", e.labels), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s %d\n", series(e.name+"_count", e.labels), h.Count())
}

// escapeHelp escapes HELP text per the Prometheus text format.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
