package obs

import (
	"strings"
	"testing"
	"time"
)

// sloClock is a manual clock for deterministic window arithmetic.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testEngine(t *testing.T, clk *sloClock, objs ...Objective) *SLOEngine {
	t.Helper()
	e, err := NewSLOEngine(SLOConfig{Objectives: objs, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSLOBurnMath: burn rate = bad fraction / budgeted bad fraction. With a
// 90% target, a 10% bad rate burns at exactly 1.0 — the whole budget, so
// the objective reports degraded with nothing left.
func TestSLOBurnMath(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	e := testEngine(t, clk, Objective{
		Name: "avail", Route: "submit", Kind: SLOAvailability, Target: 0.9,
	})
	for i := 0; i < 1000; i++ {
		e.Record("submit", i%10 == 0, 0)
	}
	clk.advance(time.Minute)
	rep := e.Report()
	o := rep.Objectives[0]
	if o.Good != 900 || o.Total != 1000 {
		t.Fatalf("good/total = %d/%d", o.Good, o.Total)
	}
	if o.BurnShort != 1 || o.BurnLong != 1 {
		t.Errorf("burn = %v/%v, want 1/1", o.BurnShort, o.BurnLong)
	}
	if o.BudgetRemaining != 0 {
		t.Errorf("budget remaining = %v, want 0 at burn 1", o.BudgetRemaining)
	}
	if rep.Status != "degraded" {
		// Budget fully consumed over the long window → degraded.
		t.Errorf("status = %q, want degraded", rep.Status)
	}
}

// TestSLOFastBurn: an all-errors route trips unhealthy on both windows; a
// clean route stays ok and the overall status is the worst objective.
func TestSLOFastBurn(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	e := testEngine(t, clk,
		Objective{Name: "bad-route", Route: "submit", Kind: SLOAvailability, Target: 0.999},
		Objective{Name: "good-route", Route: "fused", Kind: SLOAvailability, Target: 0.999},
	)
	for i := 0; i < 100; i++ {
		e.Record("submit", true, 0)
		e.Record("fused", false, 0)
	}
	clk.advance(time.Minute)
	rep := e.Report()
	if rep.Objectives[0].Status != "unhealthy" {
		t.Errorf("all-errors objective = %q", rep.Objectives[0].Status)
	}
	if rep.Objectives[1].Status != "ok" {
		t.Errorf("clean objective = %q", rep.Objectives[1].Status)
	}
	if rep.Status != "unhealthy" {
		t.Errorf("overall = %q, want unhealthy", rep.Status)
	}
}

// TestSLOWindowRecovery: after the errors stop, the short window cools off
// first — exactly why the fast-burn alert needs both windows.
func TestSLOWindowRecovery(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	e := testEngine(t, clk, Objective{
		Name: "avail", Route: "submit", Kind: SLOAvailability, Target: 0.99,
	})
	// Minute 0: a burst of errors, snapshotted.
	for i := 0; i < 100; i++ {
		e.Record("submit", true, 0)
	}
	e.Tick()
	if got := e.Report().Status; got != "unhealthy" {
		t.Fatalf("during burst: %q", got)
	}
	// 10 minutes of clean traffic: the 5m window contains only good
	// requests, the 1h window still sees the burst.
	for i := 0; i < 10; i++ {
		clk.advance(time.Minute)
		for j := 0; j < 100; j++ {
			e.Record("submit", false, 0)
		}
		e.Tick()
	}
	rep := e.Report()
	o := rep.Objectives[0]
	if o.BurnShort != 0 {
		t.Errorf("short burn after recovery = %v, want 0", o.BurnShort)
	}
	if o.BurnLong <= 0 {
		t.Errorf("long burn = %v, want > 0 (burst still in window)", o.BurnLong)
	}
	if rep.Status == "unhealthy" {
		t.Error("fast-burn alert still firing after recovery")
	}
}

// TestSLOLatencyKind: latency objectives count slow-but-successful requests
// as bad; fast failures are bad too.
func TestSLOLatencyKind(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	e := testEngine(t, clk, Objective{
		Name: "p99", Route: "fused", Kind: SLOLatency, Target: 0.99, ThresholdS: 0.001,
	})
	e.Record("fused", false, 0.0005) // good
	e.Record("fused", false, 0.1)    // slow: bad
	e.Record("fused", true, 0.0001)  // failed: bad
	o := e.Report().Objectives[0]
	if o.Good != 1 || o.Total != 3 {
		t.Errorf("good/total = %d/%d, want 1/3", o.Good, o.Total)
	}
}

// TestSLOValidation: malformed objectives are rejected at construction.
func TestSLOValidation(t *testing.T) {
	bad := []Objective{
		{Name: "", Route: "r", Kind: SLOAvailability, Target: 0.9},
		{Name: "x", Route: "r", Kind: SLOAvailability, Target: 1.0},
		{Name: "x", Route: "r", Kind: SLOAvailability, Target: 0},
		{Name: "x", Route: "r", Kind: SLOLatency, Target: 0.9},
		{Name: "x", Route: "r", Kind: "throughput", Target: 0.9},
	}
	for i, o := range bad {
		if _, err := NewSLOEngine(SLOConfig{Objectives: []Objective{o}}); err == nil {
			t.Errorf("objective %d accepted: %+v", i, o)
		}
	}
	dup := Objective{Name: "x", Route: "r", Kind: SLOAvailability, Target: 0.9}
	if _, err := NewSLOEngine(SLOConfig{Objectives: []Objective{dup, dup}}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewSLOEngine(SLOConfig{}); err == nil {
		t.Error("empty objective list accepted")
	}
}

// TestSLOGauges: the registered gauges render with slo/window labels.
func TestSLOGauges(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	e := testEngine(t, clk, Objective{
		Name: "avail", Route: "submit", Kind: SLOAvailability, Target: 0.999,
	})
	e.Record("submit", true, 0)
	r := NewRegistry()
	e.RegisterGauges(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`slo_error_budget_remaining{slo="avail"}`,
		`slo_burn_rate{slo="avail",window="5m"}`,
		`slo_burn_rate{slo="avail",window="1h"}`,
		"# HELP slo_error_budget_remaining",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestSLOTickPrune: long histories are pruned but a diff base older than
// the long window always survives.
func TestSLOTickPrune(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	e := testEngine(t, clk, Objective{
		Name: "avail", Route: "submit", Kind: SLOAvailability, Target: 0.999,
	})
	for i := 0; i < 500; i++ {
		clk.advance(time.Minute)
		e.Record("submit", false, 0)
		e.Tick()
	}
	tr := e.objs[0]
	tr.mu.Lock()
	n := len(tr.samples)
	oldest := tr.samples[0].t
	tr.mu.Unlock()
	if n > 70 { // ~65 minutes of minutely samples is the steady state
		t.Errorf("samples grew to %d", n)
	}
	if clk.t.Sub(oldest) < time.Hour {
		t.Errorf("oldest sample only %v old; need a >= 1h diff base", clk.t.Sub(oldest))
	}
}
