package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestTracerDisabledNoop verifies that spans on a disabled tracer record
// nothing and that nil/zero Spans are safe to use.
func TestTracerDisabledNoop(t *testing.T) {
	tr := &Tracer{}
	sp := tr.Start("work", "test")
	sp.Annotate("k", "v")
	sp.End()
	if n := len(tr.Events()); n != 0 {
		t.Errorf("disabled tracer recorded %d events", n)
	}
	var nilSpan *Span
	nilSpan.End() // nil must not panic
	nilSpan.Annotate("k", "v")
	nilSpan.Link(SpanContext{})
	if nilSpan.Context().IsValid() {
		t.Error("nil span context should be invalid")
	}
	(&Span{}).End() // zero value must not panic
}

func BenchmarkSpanDisabled(b *testing.B) {
	tr := &Tracer{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("work", "bench").End()
	}
}

// TestChromeTraceRoundTrip exports spans and re-parses the JSON, checking the
// trace_event schema: object container with traceEvents, complete events
// (ph "X") with non-negative microsecond timestamps and the recorded args.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := &Tracer{}
	tr.Enable()
	outer := tr.Start("experiment:fig9a", "experiment")
	inner := tr.Start("pipeline.adjust", "pipeline", L("source", "gps"))
	inner.End()
	outer.End()
	tr.Disable()

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("re-parsing trace JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(parsed.TraceEvents))
	}
	// Spans are recorded in completion order: inner first.
	ev0, ev1 := parsed.TraceEvents[0], parsed.TraceEvents[1]
	if ev0.Name != "pipeline.adjust" || ev1.Name != "experiment:fig9a" {
		t.Errorf("names = %q, %q", ev0.Name, ev1.Name)
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("%s: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("%s: negative ts/dur %v/%v", ev.Name, ev.TS, ev.Dur)
		}
		if ev.PID == 0 || ev.TID == 0 {
			t.Errorf("%s: missing pid/tid", ev.Name)
		}
	}
	if ev0.Args["source"] != "gps" {
		t.Errorf("inner args = %v, want source=gps", ev0.Args)
	}
	// The outer span must fully contain the inner one.
	if ev1.TS > ev0.TS || ev1.TS+ev1.Dur < ev0.TS+ev0.Dur {
		t.Errorf("outer [%v,%v] does not contain inner [%v,%v]",
			ev1.TS, ev1.TS+ev1.Dur, ev0.TS, ev0.TS+ev0.Dur)
	}
}

// TestChromeTraceEmpty: an enabled-but-idle tracer exports a valid empty
// trace, and a nil tracer is rejected as a programmer error.
func TestChromeTraceEmpty(t *testing.T) {
	tr := &Tracer{}
	tr.Enable()
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatalf("empty trace should serialize: %v", err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace = %q", sb.String())
	}
	var nilTr *Tracer
	if err := nilTr.WriteChromeTrace(&sb); err == nil {
		t.Error("nil tracer should error")
	}
}

// TestEnableResets: re-enabling clears prior events so back-to-back runs do
// not bleed into each other's trace files.
func TestEnableResets(t *testing.T) {
	tr := &Tracer{}
	tr.Enable()
	tr.Start("a", "t").End()
	tr.Enable()
	tr.Start("b", "t").End()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "b" {
		t.Errorf("events after re-enable = %+v, want just b", evs)
	}
}
