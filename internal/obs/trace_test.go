package obs

import (
	"context"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip: format → parse is the identity for valid
// contexts, with the sampled flag preserved both ways.
func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: sampled}
		h := sc.Traceparent()
		if len(h) != 55 || !strings.HasPrefix(h, "00-") {
			t.Fatalf("traceparent %q: bad shape", h)
		}
		got, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) failed", h)
		}
		if got != sc {
			t.Errorf("round trip %+v != %+v", got, sc)
		}
	}
}

// TestParseTraceparentRejects: malformed headers must not produce a context.
func TestParseTraceparentRejects(t *testing.T) {
	valid := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}.Traceparent()
	bad := []string{
		"",
		"00",
		valid[:54],       // truncated
		valid + "x",      // version 00 with trailing garbage
		"ff" + valid[2:], // invalid version
		strings.Replace(valid, "-", "_", 1),
		"00-" + strings.Repeat("0", 32) + valid[35:],      // zero trace id
		"00-" + strings.Repeat("g", 32) + valid[35:],      // non-hex trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span id
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
	// Forward compat: a future version with extra fields parses.
	future := "42" + valid[2:] + "-extrastate"
	if _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future version %q rejected", future)
	}
}

// TestStartCtxPropagation: StartCtx chains parent → child IDs through the
// context and keeps the whole chain in one trace.
func TestStartCtxPropagation(t *testing.T) {
	tr := &Tracer{}
	tr.Enable()
	defer tr.Disable()

	ctx, root := tr.StartCtx(context.Background(), "root", "test")
	ctx2, child := tr.StartCtx(ctx, "child", "test")
	_, grand := tr.StartCtx(ctx2, "grandchild", "test")
	grand.End()
	child.End()
	root.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Completion order: grandchild, child, root.
	g, c, r := evs[0], evs[1], evs[2]
	if r.Trace != c.Trace || c.Trace != g.Trace {
		t.Fatal("spans not in one trace")
	}
	if !r.Parent.IsZero() {
		t.Errorf("root has parent %v", r.Parent)
	}
	if c.Parent != r.ID || g.Parent != c.ID {
		t.Errorf("parent chain broken: %v<-%v<-%v", r.ID, c.Parent, g.Parent)
	}
	// Remote parent: a context seeded from a parsed traceparent continues
	// the remote trace.
	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	_, srv := tr.StartCtx(ContextWithSpan(context.Background(), remote), "server", "test")
	srv.End()
	ev := tr.Events()[3]
	if ev.Trace != remote.Trace || ev.Parent != remote.Span {
		t.Errorf("remote continuation: trace %v parent %v, want %v/%v",
			ev.Trace, ev.Parent, remote.Trace, remote.Span)
	}
}

// TestTracerRingCap: a saturated tracer stays within its capacity and
// accounts for overwritten spans in tracer_spans_dropped_total, keeping the
// most recent spans.
func TestTracerRingCap(t *testing.T) {
	tr := &Tracer{}
	tr.SetCapacity(64)
	tr.Enable()
	defer tr.Disable()

	before := obsSpansDropped.Value()
	for i := 0; i < 1000; i++ {
		sp := tr.Start("work", "test", L("i", string(rune('0'+i%10))))
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("saturated tracer holds %d events, want capacity 64", len(evs))
	}
	if got := obsSpansDropped.Value() - before; got != 1000-64 {
		t.Errorf("dropped counter advanced by %d, want %d", got, 1000-64)
	}
	// Oldest-first order is preserved across the wrap: the last event
	// recorded must be the last returned.
	last, _ := evs[63].Arg("i")
	if last != string(rune('0'+999%10)) {
		t.Errorf("newest event arg = %q", last)
	}
}

// TestTracerSampling: SetSampleRate pins the head-sampling decision at the
// extremes and defaults to always-sample.
func TestTracerSampling(t *testing.T) {
	tr := &Tracer{}
	if !tr.ShouldSample() {
		t.Error("unset rate must sample")
	}
	if tr.SampleRate() != 1 {
		t.Errorf("default rate = %v", tr.SampleRate())
	}
	tr.SetSampleRate(0)
	for i := 0; i < 100; i++ {
		if tr.ShouldSample() {
			t.Fatal("rate 0 sampled")
		}
	}
	tr.SetSampleRate(1)
	for i := 0; i < 100; i++ {
		if !tr.ShouldSample() {
			t.Fatal("rate 1 skipped")
		}
	}
	tr.SetSampleRate(2.5) // clamped
	if tr.SampleRate() != 1 {
		t.Errorf("rate clamped to %v, want 1", tr.SampleRate())
	}
}

// TestSpanLinksExported: links show up in the Chrome export args so the
// queue-boundary hop is visible in Perfetto.
func TestSpanLinksExported(t *testing.T) {
	tr := &Tracer{}
	tr.Enable()
	defer tr.Disable()
	target := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	sp := tr.Start("fold", "cloud")
	sp.Link(target)
	sp.Link(SpanContext{}) // invalid: ignored
	sp.End()

	evs := tr.Events()
	if len(evs[0].Links) != 1 || evs[0].Links[0] != target {
		t.Fatalf("links = %+v", evs[0].Links)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	want := target.Trace.String() + ":" + target.Span.String()
	if !strings.Contains(sb.String(), want) {
		t.Errorf("chrome export missing link %q", want)
	}
}
