package obs

import (
	"fmt"
	"strings"
)

// Exemplars attach a concrete trace ID to histogram buckets, rendered in
// OpenMetrics syntax (`... # {trace_id="..."} value`) so a p99 spike on a
// latency dashboard points straight at a stored trace in the debug plane.
// Each bucket (including +Inf) holds its most recent exemplar: outliers
// land in sparse high buckets, so the exemplar there stays the outlier.

// exemplar is one observation tagged with the trace it came from.
type exemplar struct {
	value float64
	trace TraceID
}

// ObserveTrace records v like Observe and, when trace is non-zero, stores
// (v, trace) as the exemplar of the bucket v lands in.
func (h *Histogram) ObserveTrace(v float64, trace TraceID) {
	h.Observe(v)
	if trace.IsZero() || len(h.ex) == 0 {
		return
	}
	idx := len(h.bounds) // +Inf slot
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.ex[idx].Store(&exemplar{value: v, trace: trace})
}

// exemplarAt returns bucket i's exemplar (i == len(bounds) is +Inf), or nil.
func (h *Histogram) exemplarAt(i int) *exemplar {
	if len(h.ex) == 0 || i < 0 || i >= len(h.ex) {
		return nil
	}
	return h.ex[i].Load()
}

// appendExemplar renders the OpenMetrics exemplar suffix onto a bucket line.
func appendExemplar(b *strings.Builder, e *exemplar) {
	if e == nil {
		return
	}
	fmt.Fprintf(b, ` # {trace_id="%s"} %s`, e.trace.String(), formatFloat(e.value))
}
