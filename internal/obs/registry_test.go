package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRace hammers counters, gauges, and histograms from many
// goroutines while concurrently rendering the registry; run under -race this
// is the concurrency-safety proof for the whole toolkit.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_counter_total")
	g := r.Gauge("race_gauge")
	h := r.Histogram("race_hist", []float64{1, 2, 4, 8})

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 10))
				// Get-or-create from multiple goroutines too.
				r.Counter("race_counter_total").Add(1)
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters*2 {
		t.Errorf("counter = %d, want %d", got, workers*iters*2)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %v", got, float64(workers*iters))
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestHistogramQuantile checks quantile estimates against a known uniform
// distribution: values 1..1000 into decade-ish buckets.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q, want float64
	}{
		{0.5, 500},
		{0.9, 900},
		{0.99, 990},
		{0.1, 100},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		// Linear interpolation inside 100-wide buckets of a uniform
		// distribution is near-exact; allow a half-percent.
		if math.Abs(got-c.want) > c.want*0.005+1 {
			t.Errorf("Quantile(%v) = %v, want ≈ %v", c.q, got, c.want)
		}
	}
	if got := h.Sum(); got != 500500 {
		t.Errorf("Sum = %v, want 500500", got)
	}
}

func TestHistogramQuantileEdge(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(5) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow-only quantile = %v, want clamp to 2", got)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("out-of-range q should be NaN")
	}
}

// TestWritePrometheusGolden pins the exact exposition text for a small
// registry: TYPE lines once per family, sorted series, histogram with
// cumulative buckets, le label last, and escaped label values.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", L("route", "submit"), L("status", "202")).Add(3)
	r.Counter("requests_total", L("route", "list"), L("status", "200")).Inc()
	r.Gauge("queue_depth").Set(2.5)
	h := r.Histogram("latency_seconds", []float64{0.1, 1}, L("route", "submit"))
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	r.Counter("weird_total", L("path", `a\b"c`)).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE latency_seconds histogram
latency_seconds_bucket{route="submit",le="0.1"} 2
latency_seconds_bucket{route="submit",le="1"} 3
latency_seconds_bucket{route="submit",le="+Inf"} 4
latency_seconds_sum{route="submit"} 3.6
latency_seconds_count{route="submit"} 4
# TYPE queue_depth gauge
queue_depth 2.5
# TYPE requests_total counter
requests_total{route="list",status="200"} 1
requests_total{route="submit",status="202"} 3
# TYPE weird_total counter
weird_total{path="a\\b\"c"} 1
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x_total")
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("fn_gauge", func() float64 { return v })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_gauge 1\n") {
		t.Errorf("missing fn_gauge: %q", sb.String())
	}
	v = 7
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_gauge 7\n") {
		t.Errorf("gauge func not re-evaluated: %q", sb.String())
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2, 3})
	h2 := r.Histogram("h", []float64{9})
	if h1 != h2 {
		t.Error("same series should return the same histogram")
	}
	if len(h1.bounds) != 3 {
		t.Errorf("bounds = %v, want first registration's", h1.bounds)
	}
}
