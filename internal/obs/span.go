package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans and exports them as Chrome trace_event JSON
// (chrome://tracing, Perfetto, `perfetto.dev/#!/viewer`). It is disabled by
// default: Start on a disabled (or nil) tracer returns a nil no-op Span
// without allocating, so always-on instrumentation costs one atomic load per
// call site until a collector opts in with Enable.
//
// Completed spans land in a fixed-capacity ring (DefaultSpanCapacity unless
// SetCapacity overrides it); once full, the oldest span is overwritten and
// tracer_spans_dropped_total is incremented, so a long -metrics run cannot
// grow memory without bound. An optional SpanSink (SetSink) additionally
// receives every completed span — that is how the tail-sampling TraceStore
// subscribes without coupling the ring to trace assembly.
type Tracer struct {
	enabled    atomic.Bool
	sampleBits atomic.Uint64 // head-sample rate, float bits + 1 (0 = unset = 1.0)

	mu       sync.Mutex
	base     time.Time
	ring     []SpanEvent
	head     int // next overwrite position once len(ring) == capacity
	capacity int

	sink atomic.Pointer[sinkBox]
}

// sinkBox wraps the interface so atomic.Pointer can hold it.
type sinkBox struct{ s SpanSink }

// SpanSink receives every completed span. Implementations must be safe for
// concurrent use; RecordSpan is called outside the tracer's lock.
type SpanSink interface {
	RecordSpan(ev SpanEvent)
}

// DefaultSpanCapacity bounds the span ring when SetCapacity was not called.
const DefaultSpanCapacity = 16384

// obsSpansDropped counts spans overwritten in the ring before export.
var obsSpansDropped = Default.Counter("tracer_spans_dropped_total")

// SpanEvent is one completed span.
type SpanEvent struct {
	// Name identifies the operation, Cat its subsystem (pipeline, fusion,
	// cloud, experiment) for trace-viewer filtering.
	Name string
	Cat  string
	// StartUS/DurUS are microseconds relative to Enable.
	StartUS float64
	DurUS   float64
	// Args are optional key/value annotations.
	Args []Label
	// Trace/ID/Parent place the span in a distributed trace. Parent is zero
	// for root spans. All three are zero for spans recorded before tracing
	// identity existed (never the case for spans from Start/StartCtx).
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	// Links reference causally related spans in other traces — e.g. a
	// coalescer fold span links to the handler spans whose submissions it
	// folded across the async queue boundary.
	Links []SpanContext
}

// Context returns the span's own context (for propagation or linking).
func (e *SpanEvent) Context() SpanContext {
	return SpanContext{Trace: e.Trace, Span: e.ID, Sampled: true}
}

// Arg returns the value of the named annotation, if present.
func (e *SpanEvent) Arg(key string) (string, bool) {
	for _, a := range e.Args {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// DefaultTracer is the process-wide tracer all built-in spans report to: the
// pipeline, the cloud server/coalescer, and the cloud client all default to
// it, so one `gradebench -tracefile` run captures pipeline and cloud spans
// in a single file.
var DefaultTracer = &Tracer{}

// Enable starts collection, resetting the clock and any prior events.
func (t *Tracer) Enable() {
	t.mu.Lock()
	t.base = time.Now()
	t.ring = t.ring[:0]
	t.head = 0
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable stops collection; already-recorded events remain exportable.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetCapacity bounds the span ring to n events (min 16). It resets any
// buffered events and takes effect immediately.
func (t *Tracer) SetCapacity(n int) {
	if n < 16 {
		n = 16
	}
	t.mu.Lock()
	t.capacity = n
	t.ring = nil
	t.head = 0
	t.mu.Unlock()
}

// SetSink registers sink to receive every completed span (nil unregisters).
func (t *Tracer) SetSink(sink SpanSink) {
	if sink == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: sink})
}

// Span is an in-flight operation; End records it. A nil Span (from a
// disabled tracer) is a no-op for every method.
type Span struct {
	t      *Tracer
	name   string
	cat    string
	start  time.Time
	args   []Label
	sc     SpanContext
	parent SpanID
	links  []SpanContext
	// argbuf backs args for the common few-annotation span, so starting and
	// annotating a span costs one allocation (the Span itself), not one per
	// label slice growth step. args spills to the heap past its capacity.
	argbuf [4]Label
}

// Start opens a root span in a fresh trace. args annotate the span in the
// exported trace; they are only materialized when the tracer is enabled.
func (t *Tracer) Start(name, cat string, args ...Label) *Span {
	if !t.Enabled() {
		return nil
	}
	return t.newSpan(name, cat, SpanContext{}, args)
}

// StartCtx opens a span as a child of the span context carried by ctx (a
// root span of a fresh trace when ctx carries none) and returns a derived
// context carrying the new span's identity for further propagation. On a
// disabled tracer it returns (ctx, nil) unchanged.
func (t *Tracer) StartCtx(ctx context.Context, name, cat string, args ...Label) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	parent, _ := SpanContextFrom(ctx)
	s := t.newSpan(name, cat, parent, args)
	return ContextWithSpan(ctx, s.sc), s
}

// StartChildCtx opens a span as a child of an explicitly supplied parent
// context (e.g. one parsed from an inbound traceparent header) and returns a
// derived context carrying the new span's identity. Equivalent to stashing
// parent in ctx and calling StartCtx, minus the intermediate context
// allocation — this is the server middleware's per-request path.
func (t *Tracer) StartChildCtx(ctx context.Context, parent SpanContext, name, cat string, args ...Label) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	s := t.newSpan(name, cat, parent, args)
	return ContextWithSpan(ctx, s.sc), s
}

func (t *Tracer) newSpan(name, cat string, parent SpanContext, args []Label) *Span {
	s := &Span{t: t, name: name, cat: cat, start: time.Now()}
	s.args = append(s.argbuf[:0], args...)
	if parent.IsValid() {
		s.sc = SpanContext{Trace: parent.Trace, Span: NewSpanID(), Sampled: parent.Sampled}
		s.parent = parent.Span
	} else {
		s.sc = SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	}
	return s
}

// Context returns the span's context for propagation (e.g. as a traceparent
// header) or linking. The zero SpanContext on a nil span is invalid.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Annotate attaches a key/value argument to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.args = append(s.args, Label{Key: key, Value: value})
}

// Link records a causal reference to a span in another trace (the span-link
// model: fold spans link back to the handler spans they folded for).
// Invalid contexts are ignored.
func (s *Span) Link(sc SpanContext) {
	if s == nil || !sc.IsValid() {
		return
	}
	s.links = append(s.links, sc)
}

// End completes the span and records it.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	end := time.Now()
	t := s.t
	t.mu.Lock()
	ev := SpanEvent{
		Name:    s.name,
		Cat:     s.cat,
		StartUS: float64(s.start.Sub(t.base)) / float64(time.Microsecond),
		DurUS:   float64(end.Sub(s.start)) / float64(time.Microsecond),
		Args:    s.args,
		Trace:   s.sc.Trace,
		ID:      s.sc.Span,
		Parent:  s.parent,
		Links:   s.links,
	}
	capacity := t.capacity
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	if len(t.ring) < capacity {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.head] = ev
		t.head++
		if t.head == capacity {
			t.head = 0
		}
		obsSpansDropped.Inc()
	}
	t.mu.Unlock()
	if box := t.sink.Load(); box != nil {
		box.s.RecordSpan(ev)
	}
}

// Events returns a snapshot of the buffered spans, oldest first. When the
// ring has wrapped, only the most recent SetCapacity (or
// DefaultSpanCapacity) spans remain; tracer_spans_dropped_total counts the
// overwritten remainder.
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	capacity := t.capacity
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	if len(t.ring) < capacity {
		return append([]SpanEvent(nil), t.ring...)
	}
	out := make([]SpanEvent, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// chromeEvent is the trace_event wire form: a complete ("ph":"X") event with
// microsecond timestamps, as consumed by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit,omitempty"`
}

// chromeFrom converts completed spans to the trace_event container form.
// Trace identity and links ride in Args (trace_id/span_id/parent_id/links)
// so the schema stays exactly what WriteChromeTrace has always produced.
func chromeFrom(events []SpanEvent) chromeTrace {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayUnit: "ms"}
	for i := range events {
		e := &events[i]
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: "X",
			TS: e.StartUS, Dur: e.DurUS, PID: 1, TID: 1,
		}
		n := len(e.Args)
		if !e.Trace.IsZero() {
			n += 3
		}
		if len(e.Links) > 0 {
			n++
		}
		if n > 0 {
			ce.Args = make(map[string]string, n)
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Value
			}
			if !e.Trace.IsZero() {
				ce.Args["trace_id"] = e.Trace.String()
				ce.Args["span_id"] = e.ID.String()
				if !e.Parent.IsZero() {
					ce.Args["parent_id"] = e.Parent.String()
				}
			}
			if len(e.Links) > 0 {
				var sb strings.Builder
				for j, l := range e.Links {
					if j > 0 {
						sb.WriteByte(' ')
					}
					sb.WriteString(l.Trace.String())
					sb.WriteByte(':')
					sb.WriteString(l.Span.String())
				}
				ce.Args["links"] = sb.String()
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	return out
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON. An
// empty trace is valid and yields an empty traceEvents array; a nil tracer is
// a programmer error.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeFrom(t.Events())); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}
