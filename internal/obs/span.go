package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans and exports them as Chrome trace_event JSON
// (chrome://tracing, Perfetto, `perfetto.dev/#!/viewer`). It is disabled by
// default: Start on a disabled (or nil) tracer returns a no-op Span without
// allocating, so always-on instrumentation costs one atomic load per call
// site until a collector opts in with Enable.
type Tracer struct {
	enabled atomic.Bool

	mu     sync.Mutex
	base   time.Time
	events []SpanEvent
}

// SpanEvent is one completed span.
type SpanEvent struct {
	// Name identifies the operation, Cat its subsystem (pipeline, fusion,
	// cloud, experiment) for trace-viewer filtering.
	Name string
	Cat  string
	// StartUS/DurUS are microseconds relative to Enable.
	StartUS float64
	DurUS   float64
	// Args are optional key/value annotations.
	Args []Label
}

// DefaultTracer is the process-wide tracer all built-in spans report to.
var DefaultTracer = &Tracer{}

// Enable starts collection, resetting the clock and any prior events.
func (t *Tracer) Enable() {
	t.mu.Lock()
	t.base = time.Now()
	t.events = t.events[:0]
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable stops collection; already-recorded events remain exportable.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Span is an in-flight operation; End records it. The zero Span (from a
// disabled tracer) is a no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	start time.Time
	args  []Label
}

// Start opens a span. args annotate the span in the exported trace; they are
// only materialized when the tracer is enabled.
func (t *Tracer) Start(name, cat string, args ...Label) Span {
	if !t.Enabled() {
		return Span{}
	}
	var as []Label
	if len(args) > 0 {
		as = append(as, args...)
	}
	return Span{t: t, name: name, cat: cat, start: time.Now(), args: as}
}

// End completes the span and records it.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := time.Now()
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.events = append(s.t.events, SpanEvent{
		Name:    s.name,
		Cat:     s.cat,
		StartUS: float64(s.start.Sub(s.t.base)) / float64(time.Microsecond),
		DurUS:   float64(end.Sub(s.start)) / float64(time.Microsecond),
		Args:    s.args,
	})
}

// Events returns a snapshot of the recorded spans in completion order.
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// chromeEvent is the trace_event wire form: a complete ("ph":"X") event with
// microsecond timestamps, as consumed by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON. An
// empty trace is valid and yields an empty traceEvents array; a nil tracer is
// a programmer error.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	events := t.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: "X",
			TS: e.StartUS, Dur: e.DurUS, PID: 1, TID: 1,
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]string, len(e.Args))
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}
