package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"roadgrade/internal/frame"
	"roadgrade/internal/geo"
	"roadgrade/internal/kalman"
	"roadgrade/internal/lanechange"
	"roadgrade/internal/mat"
	"roadgrade/internal/obs"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// Pipeline instrumentation. Handles are package vars so the per-track and
// per-tick paths only touch atomics; spans are recorded per stage (never per
// tick) and are no-ops unless a collector enabled obs.DefaultTracer.
var (
	obsAdjustSeconds = obs.Default.Histogram("pipeline_adjust_seconds", obs.LatencyBuckets)
	obsTrackSeconds  = obs.Default.Histogram("pipeline_estimate_track_seconds", obs.LatencyBuckets)

	obsBatchRejected = obs.Default.Counter("pipeline_gate_rejected_total", obs.L("mode", "batch"))
	obsBatchResets   = obs.Default.Counter("pipeline_filter_resets_total", obs.L("mode", "batch"))
	obsBatchBridged  = obs.Default.Counter("pipeline_nonfinite_bridged_total", obs.L("mode", "batch"))

	obsStreamRejected = obs.Default.Counter("pipeline_gate_rejected_total", obs.L("mode", "streaming"))
	obsStreamResets   = obs.Default.Counter("pipeline_filter_resets_total", obs.L("mode", "streaming"))
	obsStreamBridged  = obs.Default.Counter("pipeline_nonfinite_bridged_total", obs.L("mode", "streaming"))
)

// Track is a road-gradient estimation track: one EKF pass over a trace using
// one velocity source (§III-C3 — "different velocity values ... result in
// different road gradient estimation tracks").
type Track struct {
	Source sensors.VelocitySource
	// T is the sample time, S the map-matched arc position along the
	// road (shared across tracks), GradeRad the θ estimate and Var the
	// filter's θ variance (P_k of Eq. 6) at each sample.
	T        []float64
	S        []float64
	GradeRad []float64
	Var      []float64
	// NIS is the track's average normalized innovation squared. A
	// consistent filter has NIS ≈ 1; the pipeline inflates Var by
	// max(1, NIS) so the Eq. (6) fusion weights reflect realized (not just
	// modeled) track quality.
	NIS float64
	// Rejected counts measurements the innovation gate refused (outliers and
	// non-finite readings); Resets counts automatic filter re-initializations
	// after divergence. Both are zero on a healthy drive.
	Rejected int
	Resets   int
}

// Len returns the number of samples in the track.
func (t *Track) Len() int { return len(t.T) }

// Config tunes the estimation pipeline. The zero value uses paper-faithful
// defaults.
type Config struct {
	// Params are the vehicle constants of Eq. (3) (default DefaultParams).
	Params vehicle.Params
	// Thresholds for lane-change detection (default SimulatorThresholds;
	// calibrate with experiment.CalibrateFromStudy or lanechange.Calibrate
	// for other drivers).
	Thresholds lanechange.Thresholds
	// HeadingWindowM is the map-heading granularity for w_road (default
	// frame.DefaultHeadingWindowM).
	HeadingWindowM float64
	// DisableLaneChangeCorrection skips Eq. (2) (ablation / baseline mode).
	DisableLaneChangeCorrection bool
	// DisableTwoPass turns off the forward-backward smoothing pass and
	// keeps the causal forward EKF only (ablation). Tracks are formed
	// after the drive and fused offline (§III-C3), so the default runs the
	// EKF in both directions and combines the passes, which removes the
	// filter lag at grade transitions.
	DisableTwoPass bool
	// ProcessNoiseV / ProcessNoiseTheta are the EKF process noise standard
	// deviations per √s (defaults 0.05 m/s, 0.012 rad).
	ProcessNoiseV     float64
	ProcessNoiseTheta float64
	// MeasurementNoise overrides the per-source velocity measurement noise
	// standard deviation; <= 0 uses the built-in per-source defaults.
	MeasurementNoise float64
	// InitialGradeVar is the prior variance on θ (default (2°)²).
	InitialGradeVar float64
	// NISGate is the innovation gate: a velocity measurement whose
	// normalized innovation squared ν²/S exceeds the gate is rejected
	// instead of folded in, so multipath spikes and stalled-sensor jumps
	// cannot yank the state. Default 25 (a 5σ gate — wide enough that a
	// healthy drive essentially never trips it); negative disables gating.
	NISGate float64
	// DivergenceGradeRad bounds the plausible |θ| estimate; beyond it (or on
	// a non-finite state/covariance) the filter is declared diverged and
	// reset to the last good speed with the initial covariance. Default
	// 0.6 rad (≈34°, steeper than any drivable road).
	DivergenceGradeRad float64
}

func (c Config) withDefaults() Config {
	if c.Params.MassKg == 0 {
		c.Params = vehicle.DefaultParams()
	}
	if c.Thresholds.DeltaRad <= 0 || c.Thresholds.TMinS <= 0 {
		c.Thresholds = lanechange.SimulatorThresholds
	}
	if c.HeadingWindowM <= 0 {
		c.HeadingWindowM = frame.DefaultHeadingWindowM
	}
	if c.ProcessNoiseV <= 0 {
		c.ProcessNoiseV = 0.05
	}
	if c.ProcessNoiseTheta <= 0 {
		c.ProcessNoiseTheta = 0.012
	}
	if c.InitialGradeVar <= 0 {
		d := 2 * math.Pi / 180
		c.InitialGradeVar = d * d
	}
	if c.NISGate == 0 {
		c.NISGate = 25
	}
	if c.DivergenceGradeRad <= 0 {
		c.DivergenceGradeRad = 0.6
	}
	return c
}

// sourceNoise returns the velocity measurement noise σ for a source.
func sourceNoise(src sensors.VelocitySource) float64 {
	switch src {
	case sensors.SourceGPS:
		return 0.25
	case sensors.SourceSpeedometer:
		return 0.25
	case sensors.SourceAccelerometer:
		return 0.6
	case sensors.SourceCANBus:
		return 0.08
	default:
		return 0.5
	}
}

// Pipeline is the end-to-end estimator of Figure 1: data adjustment (lane
// change detection + velocity correction) followed by EKF gradient
// estimation per velocity source.
type Pipeline struct {
	cfg Config
}

// NewPipeline returns a pipeline with the given config.
func NewPipeline(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid vehicle params: %w", err)
	}
	return &Pipeline{cfg: cfg}, nil
}

// Adjusted holds the data-adjustment stage output shared by all tracks.
type Adjusted struct {
	// SteerRates is the w_steer profile (smoothed input is used only
	// inside detection; this is the raw derived profile).
	SteerRates []float64
	// Detections are the lane changes found by Algorithm 1.
	Detections []lanechange.Detection
	// S is the common localization: arc position along the road per tick,
	// from odometer integration corrected by map-matched GPS fixes. All
	// tracks share it so fusion aligns spatially.
	S []float64
}

// Adjust runs the data-adjustment stage: derive w_steer from the gyroscope
// and map geometry, then detect lane changes.
func (p *Pipeline) Adjust(trace *sensors.Trace, line *geo.Polyline) (*Adjusted, error) {
	sp := obs.DefaultTracer.Start("pipeline.adjust", "pipeline")
	defer sp.End()
	start := time.Now()
	if trace == nil || len(trace.Records) == 0 {
		return nil, errors.New("core: empty trace")
	}
	if line == nil {
		return nil, errors.New("core: nil road line")
	}
	est, err := frame.NewSteeringEstimator(line, p.cfg.HeadingWindowM)
	if err != nil {
		return nil, fmt.Errorf("core: steering estimator: %w", err)
	}
	gyro := make([]float64, len(trace.Records))
	speed := make([]float64, len(trace.Records))
	for i, r := range trace.Records {
		gyro[i] = r.GyroYaw
		speed[i] = r.Speedometer
	}
	// Gap bridging: NaN/Inf readings (a crashed sensor HAL) are replaced by
	// the last finite value so downstream detection and localization see a
	// continuous, finite signal.
	obsBatchBridged.Add(uint64(bridgeNonFinite(gyro) + bridgeNonFinite(speed)))
	steer, err := est.SteerRates(trace.DT, gyro, speed)
	if err != nil {
		return nil, fmt.Errorf("core: deriving steer rates: %w", err)
	}
	det := lanechange.NewDetector(lanechange.Config{Thresholds: p.cfg.Thresholds})
	detections, err := det.Detect(trace.DT, steer, speed)
	if err != nil {
		return nil, fmt.Errorf("core: lane change detection: %w", err)
	}
	spLoc := obs.DefaultTracer.Start("pipeline.localize", "pipeline")
	s := localize(trace, speed, line)
	spLoc.End()
	obsAdjustSeconds.Observe(time.Since(start).Seconds())
	return &Adjusted{
		SteerRates: steer,
		Detections: detections,
		S:          s,
	}, nil
}

// bridgeNonFinite replaces NaN/Inf entries with the nearest preceding finite
// value (or the first finite value for a non-finite prefix; zeros if the
// whole series is bad). It returns the number of entries bridged.
func bridgeNonFinite(xs []float64) int {
	first := math.NaN()
	for _, x := range xs {
		if isFinite(x) {
			first = x
			break
		}
	}
	if !isFinite(first) {
		for i := range xs {
			xs[i] = 0
		}
		return len(xs)
	}
	bridged := 0
	last := first
	for i, x := range xs {
		if isFinite(x) {
			last = x
		} else {
			xs[i] = last
			bridged++
		}
	}
	return bridged
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// localize dead-reckons arc position from the odometer and snaps toward
// map-matched GPS fixes — how a phone app tracks where it is on the road
// between (and through) GPS dropouts. speeds is the bridged (finite)
// speedometer series; the maxSnapM/maxOffRoad guards double as multipath
// rejection, so spiked fixes cannot teleport the localization.
func localize(trace *sensors.Trace, speeds []float64, line *geo.Polyline) []float64 {
	const (
		blendGain  = 0.3 // pull toward the GPS-matched position per fix
		maxSnapM   = 60  // ignore fixes matching implausibly far away
		maxOffRoad = 25  // ignore fixes far off the road geometry
	)
	idx := line.Index()
	out := make([]float64, len(trace.Records))
	var s float64
	for i, rec := range trace.Records {
		s += speeds[i] * trace.DT
		if rec.GPSValid && isFinite(rec.GPSE) && isFinite(rec.GPSN) {
			sGPS, dist := idx.ClosestS(geo.ENU{E: rec.GPSE, N: rec.GPSN})
			if dist < maxOffRoad && math.Abs(sGPS-s) < maxSnapM {
				s += blendGain * (sGPS - s)
			}
		}
		out[i] = s
	}
	return out
}

// EstimateTrack runs the EKF over one velocity source, applying the Eq. (2)
// correction inside detected lane changes (unless disabled).
func (p *Pipeline) EstimateTrack(trace *sensors.Trace, adj *Adjusted, src sensors.VelocitySource) (*Track, error) {
	sp := obs.DefaultTracer.Start("pipeline.estimate_track", "pipeline", obs.L("source", src.String()))
	defer sp.End()
	start := time.Now()
	if trace == nil || len(trace.Records) == 0 {
		return nil, errors.New("core: empty trace")
	}
	if adj == nil {
		return nil, errors.New("core: nil adjusted data (call Adjust first)")
	}
	vels, err := trace.Velocity(src)
	if err != nil {
		return nil, fmt.Errorf("core: velocity source: %w", err)
	}

	// Eq. (2): correct the measured velocities inside lane changes.
	raw := make([]float64, len(vels))
	for i, v := range vels {
		raw[i] = v.V
	}
	corrected := raw
	if !p.cfg.DisableLaneChangeCorrection && len(adj.Detections) > 0 {
		corrected, err = lanechange.CorrectVelocities(trace.DT, raw, adj.SteerRates, adj.Detections)
		if err != nil {
			return nil, fmt.Errorf("core: velocity correction: %w", err)
		}
	}

	sigma := p.cfg.MeasurementNoise
	if sigma <= 0 {
		sigma = sourceNoise(src)
	}
	// One model + filter serves both sweep directions: the backward pass
	// resets the state/covariance and flips the model's Δt, reusing the
	// filter's scratch buffers instead of rebuilding everything.
	dt := trace.DT
	model := &GradeModel{Params: p.cfg.Params, DT: dt}
	q := mat.Diag(
		p.cfg.ProcessNoiseV*p.cfg.ProcessNoiseV*dt,
		p.cfg.ProcessNoiseTheta*p.cfg.ProcessNoiseTheta*dt,
	)
	r := mat.Diag(sigma * sigma)
	p0 := mat.Diag(1, p.cfg.InitialGradeVar)
	f, err := kalman.NewFilter(model.kalmanModel(), []float64{firstValid(vels), 0}, p0, q, r)
	if err != nil {
		return nil, fmt.Errorf("core: building filter: %w", err)
	}
	fwd, err := p.runPass(trace, vels, corrected, sigma, false, model, f, p0)
	if err != nil {
		return nil, err
	}
	grade, vari := fwd.grade, fwd.vari
	rejected, resets := fwd.rejected, fwd.resets
	if !p.cfg.DisableTwoPass {
		model.DT = -dt
		if err := f.Reset([]float64{lastValid(vels), 0}, p0); err != nil {
			return nil, fmt.Errorf("core: resetting filter: %w", err)
		}
		bwd, err := p.runPass(trace, vels, corrected, sigma, true, model, f, p0)
		if err != nil {
			return nil, err
		}
		rejected += bwd.rejected
		resets += bwd.resets
		// Per-sample inverse-variance combination of the causal and
		// anti-causal passes (zero-phase smoothing).
		for i := range grade {
			wf := 1 / vari[i]
			wb := 1 / bwd.vari[i]
			grade[i] = (wf*grade[i] + wb*bwd.grade[i]) / (wf + wb)
			vari[i] = 1 / (wf + wb)
		}
	}

	n := len(trace.Records)
	track := &Track{
		Source:   src,
		T:        make([]float64, 0, n),
		S:        make([]float64, 0, n),
		GradeRad: grade,
		Var:      vari,
		NIS:      fwd.nis,
		Rejected: rejected,
		Resets:   resets,
	}
	for i, rec := range trace.Records {
		track.T = append(track.T, rec.T)
		track.S = append(track.S, adj.S[i])
	}
	// Innovation-consistency calibration: an inconsistent filter (NIS > 1)
	// understates its variance by about the same factor.
	if scale := math.Max(1, track.NIS); scale > 1 {
		for i := range track.Var {
			track.Var[i] *= scale
		}
	}
	obsBatchRejected.Add(uint64(rejected))
	obsBatchResets.Add(uint64(resets))
	obsTrackSeconds.Observe(time.Since(start).Seconds())
	return track, nil
}

// passResult is one directional EKF sweep over the trace.
type passResult struct {
	grade    []float64
	vari     []float64
	nis      float64
	rejected int
	resets   int
}

// runPass sweeps the EKF over the trace forward (reverse=false) or backward
// in time (reverse=true; the caller flips the model's Δt and resets the
// filter state between directions). The sweep is hardened against degraded
// input: non-finite accelerometer reads are bridged with the last finite
// value, measurements are innovation-gated, and a diverged filter (non-finite
// state or implausible grade) is re-initialized from the last good speed
// instead of poisoning the rest of the pass.
func (p *Pipeline) runPass(trace *sensors.Trace, vels []sensors.VelSample, corrected []float64, sigma float64, reverse bool, model *GradeModel, f *kalman.Filter, p0 *mat.Matrix) (passResult, error) {
	n := len(trace.Records)
	res := passResult{grade: make([]float64, n), vari: make([]float64, n)}
	var nisSum float64
	var nisN int
	z := make([]float64, 1)
	lastAccel := 0.0
	lastGoodV := f.StateAt(0) // the caller's (finite) initial speed
	for step := 0; step < n; step++ {
		i := step
		if reverse {
			i = n - 1 - step
		}
		rec := trace.Records[i]
		if isFinite(rec.AccelLong) {
			lastAccel = rec.AccelLong
		}
		model.Accel = lastAccel
		f.Predict()
		if vels[i].Valid {
			priorVar := f.CovarianceAt(0, 0)
			z[0] = corrected[i]
			innov, accepted, err := f.UpdateGated(z, p.cfg.NISGate)
			if err != nil {
				return passResult{}, fmt.Errorf("core: EKF update at t=%.2f: %w", rec.T, err)
			}
			if accepted {
				nisSum += innov[0] * innov[0] / (priorVar + sigma*sigma)
				nisN++
				lastGoodV = z[0]
			} else {
				res.rejected++
			}
		}
		if p.diverged(f) {
			if err := f.Reset([]float64{lastGoodV, 0}, p0); err != nil {
				return passResult{}, fmt.Errorf("core: divergence reset at t=%.2f: %w", rec.T, err)
			}
			res.resets++
		}
		res.grade[i] = f.StateAt(1)
		res.vari[i] = math.Max(1e-12, f.CovarianceAt(1, 1))
	}
	if nisN > 0 {
		res.nis = nisSum / float64(nisN)
	}
	return res, nil
}

// diverged runs the streaming-estimator divergence test: non-finite state or
// covariance, an implausibly steep grade estimate, or an impossible speed.
func (p *Pipeline) diverged(f *kalman.Filter) bool {
	if !f.Healthy() {
		return true
	}
	if math.Abs(f.StateAt(1)) > p.cfg.DivergenceGradeRad {
		return true
	}
	return math.Abs(f.StateAt(0)) > 150 // m/s; no road vehicle goes there
}

// EstimateAll produces the four velocity-source tracks of §III-C3 from one
// trace.
func (p *Pipeline) EstimateAll(trace *sensors.Trace, line *geo.Polyline) ([]*Track, error) {
	sp := obs.DefaultTracer.Start("pipeline.estimate_all", "pipeline")
	defer sp.End()
	adj, err := p.Adjust(trace, line)
	if err != nil {
		return nil, err
	}
	sources := sensors.AllSources()
	tracks := make([]*Track, 0, len(sources))
	for _, src := range sources {
		tr, err := p.EstimateTrack(trace, adj, src)
		if err != nil {
			return nil, fmt.Errorf("core: estimating %v track: %w", src, err)
		}
		tracks = append(tracks, tr)
	}
	return tracks, nil
}

func firstValid(vels []sensors.VelSample) float64 {
	for _, v := range vels {
		if v.Valid && isFinite(v.V) {
			return v.V
		}
	}
	return 0
}

func lastValid(vels []sensors.VelSample) float64 {
	for i := len(vels) - 1; i >= 0; i-- {
		if vels[i].Valid && isFinite(vels[i].V) {
			return vels[i].V
		}
	}
	return 0
}
