// Package core implements the paper's primary contribution: road gradient
// estimation from smartphone measurements. It combines the vehicle state
// space equation (Eq. 5) with an Extended Kalman Filter whose velocity
// innovation corrects the gradient estimate (§III-C2), the steering-rate
// derivation and lane-change velocity correction (§III-B), and produces one
// gradient track per velocity source for fusion (§III-C3).
package core

import (
	"math"

	"roadgrade/internal/kalman"
	"roadgrade/internal/mat"
	"roadgrade/internal/vehicle"
)

// GradeModel is the discrete-time vehicle state space equation of Eq. (5)
// over the state x = [v, θ]:
//
//	v(t+1) = v(t) + (â(t) − g·sin θ(t))·Δt
//	θ(t+1) = θ(t) + ρ·A_f·C_d·v(t)·â(t)/(m·g·cos θ(t))·Δt
//
// where â is the measured longitudinal specific force. The −g·sinθ term
// reflects that a phone accelerometer measures specific force, which is what
// couples the velocity innovation Δ = v̂ − v(t+1|t) to the gradient state
// (DESIGN.md interpretation choice 1); the θ drift term is the paper's
// Eq. (4). The measurement is the longitudinal velocity v̂ from one of the
// four sources.
type GradeModel struct {
	Params vehicle.Params
	DT     float64
	// Accel is the current specific-force input â(t); the caller sets it
	// before each Predict.
	Accel float64
}

// kalmanModel adapts GradeModel to the generic EKF interface. The closures
// reuse one output buffer per function, as the kalman.Model contract allows —
// the filter runs one predict/update pair per sensor tick, and these
// allocations dominated its heap profile. All inputs are read into locals
// before the shared buffer is written, so aliasing x with a previous output
// is safe.
func (g *GradeModel) kalmanModel() kalman.Model {
	predictOut := make([]float64, 2)
	fj := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	measureOut := make([]float64, 1)
	hj := mat.FromRows([][]float64{{1, 0}})
	return kalman.Model{
		StateDim: 2,
		MeasDim:  1,
		Predict: func(x []float64) []float64 {
			v, theta := x[0], clampGrade(x[1])
			vNext := v + (g.Accel-vehicle.Gravity*math.Sin(theta))*g.DT
			thetaNext := theta + g.Params.GradeDrift(v, g.Accel, theta)*g.DT
			predictOut[0] = math.Max(0, vNext)
			predictOut[1] = clampGrade(thetaNext)
			return predictOut
		},
		PredictJacobian: func(x []float64) *mat.Matrix {
			v, theta := x[0], clampGrade(x[1])
			cos := math.Cos(theta)
			k := g.Params.AirDensity * g.Params.FrontalAreaM2 * g.Params.DragCoeff /
				(g.Params.MassKg * vehicle.Gravity)
			fj.Set(0, 0, 1)
			fj.Set(0, 1, -vehicle.Gravity*cos*g.DT)
			fj.Set(1, 0, k*g.Accel*g.DT/cos)
			fj.Set(1, 1, 1+k*v*g.Accel*g.DT*math.Sin(theta)/(cos*cos))
			return fj
		},
		Measure: func(x []float64) []float64 {
			measureOut[0] = x[0]
			return measureOut
		},
		MeasureJacobian: func(x []float64) *mat.Matrix { return hj },
	}
}

// clampGrade keeps θ in a physically plausible band (±30°) so cosθ stays
// well conditioned even if the filter is perturbed early on.
func clampGrade(theta float64) float64 {
	const lim = math.Pi / 6
	if theta > lim {
		return lim
	}
	if theta < -lim {
		return -lim
	}
	return theta
}
