package core

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/frame"
	"roadgrade/internal/geo"
	"roadgrade/internal/kalman"
	"roadgrade/internal/mat"
	"roadgrade/internal/sensors"
)

// Streaming is the online (causal) variant of the estimator: a phone app
// feeds sensor records as they arrive and reads back the current gradient
// estimate in real time. It runs a single forward EKF on one velocity source
// with the shared localization; the offline Pipeline (two-pass, all sources,
// fusion) remains the accurate post-drive path.
//
// Not safe for concurrent use.
type Streaming struct {
	cfg    Config
	source sensors.VelocitySource
	line   *geo.Polyline
	idx    *geo.IndexedPolyline
	steer  *frame.SteeringEstimator
	model  *GradeModel
	filter *kalman.Filter
	dt     float64
	sigma  float64
	z      [1]float64 // measurement scratch

	started bool
	s       float64 // localized arc position
	t       float64

	// Graceful-degradation state: last finite readings for gap bridging,
	// plus counters a supervisor can watch.
	lastAccel  float64
	lastSpeedo float64
	rejected   int
	resets     int
}

// Estimate is the streaming output after one record.
type Estimate struct {
	T        float64
	S        float64
	SpeedMS  float64
	GradeRad float64
	// GradeVar is the filter's variance on the gradient state.
	GradeVar float64
	// SteerRate is the derived w_steer at this tick.
	SteerRate float64
}

// NewStreaming builds an online estimator over one velocity source. dt is
// the sensor tick interval.
func NewStreaming(cfg Config, line *geo.Polyline, src sensors.VelocitySource, dt float64) (*Streaming, error) {
	if line == nil {
		return nil, errors.New("core: nil road line")
	}
	if dt <= 0 {
		return nil, fmt.Errorf("core: invalid dt %v", dt)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid vehicle params: %w", err)
	}
	est, err := frame.NewSteeringEstimator(line, cfg.HeadingWindowM)
	if err != nil {
		return nil, fmt.Errorf("core: steering estimator: %w", err)
	}
	sigma := cfg.MeasurementNoise
	if sigma <= 0 {
		sigma = sourceNoise(src)
	}
	return &Streaming{
		cfg:    cfg,
		source: src,
		line:   line,
		idx:    line.Index(),
		steer:  est,
		dt:     dt,
		sigma:  sigma,
	}, nil
}

// Rejected counts measurements refused by the innovation gate; Resets counts
// automatic filter re-initializations after divergence. Both stay zero on a
// healthy stream.
func (st *Streaming) Rejected() int { return st.rejected }

// Resets reports how many times divergence detection re-initialized the
// filter.
func (st *Streaming) Resets() int { return st.resets }

// Push feeds one sensor record and returns the updated estimate. The first
// record initializes the filter from the measured speed. Degraded input fails
// soft: non-finite readings are bridged with the last finite value, outlier
// measurements are gated out, and a diverged filter resets itself.
func (st *Streaming) Push(rec sensors.Record) (Estimate, error) {
	v, valid, err := st.velocityOf(rec)
	if err != nil {
		return Estimate{}, err
	}
	if valid && !isFinite(v) {
		valid = false
	}
	if isFinite(rec.AccelLong) {
		st.lastAccel = rec.AccelLong
	} else {
		obsStreamBridged.Inc()
	}
	if isFinite(rec.Speedometer) {
		st.lastSpeedo = rec.Speedometer
	} else {
		obsStreamBridged.Inc()
	}
	if !st.started {
		v0 := v
		if !valid {
			v0 = st.lastSpeedo
		}
		model := &GradeModel{Params: st.cfg.Params, DT: st.dt}
		f, err := kalman.NewFilter(model.kalmanModel(), []float64{v0, 0},
			mat.Diag(1, st.cfg.InitialGradeVar),
			mat.Diag(
				st.cfg.ProcessNoiseV*st.cfg.ProcessNoiseV*st.dt,
				st.cfg.ProcessNoiseTheta*st.cfg.ProcessNoiseTheta*st.dt,
			),
			mat.Diag(st.sigma*st.sigma),
		)
		if err != nil {
			return Estimate{}, fmt.Errorf("core: building streaming filter: %w", err)
		}
		st.model = model
		st.filter = f
		st.started = true
	}

	// Localize: odometer integration snapped to map-matched GPS fixes. The
	// distance guards double as multipath rejection.
	st.s += st.lastSpeedo * st.dt
	if rec.GPSValid && isFinite(rec.GPSE) && isFinite(rec.GPSN) {
		sGPS, dist := st.idx.ClosestS(geo.ENU{E: rec.GPSE, N: rec.GPSN})
		if dist < 25 && math.Abs(sGPS-st.s) < 60 {
			st.s += 0.3 * (sGPS - st.s)
		}
	}

	st.model.Accel = st.lastAccel
	st.filter.Predict()
	if valid {
		st.z[0] = v
		_, accepted, err := st.filter.UpdateGated(st.z[:], st.cfg.NISGate)
		if err != nil {
			return Estimate{}, fmt.Errorf("core: streaming update at t=%.2f: %w", rec.T, err)
		}
		if !accepted {
			st.rejected++
			obsStreamRejected.Inc()
		}
	}
	// Divergence detection: a non-finite or implausible state re-initializes
	// the filter from the last finite speed instead of streaming garbage.
	if !st.filter.Healthy() ||
		math.Abs(st.filter.StateAt(1)) > st.cfg.DivergenceGradeRad ||
		math.Abs(st.filter.StateAt(0)) > 150 {
		v0 := st.lastSpeedo
		if valid {
			v0 = v
		}
		if err := st.filter.Reset([]float64{v0, 0}, mat.Diag(1, st.cfg.InitialGradeVar)); err != nil {
			return Estimate{}, fmt.Errorf("core: streaming divergence reset at t=%.2f: %w", rec.T, err)
		}
		st.resets++
		obsStreamResets.Inc()
	}
	st.t = rec.T
	steerGyro := rec.GyroYaw
	if !isFinite(steerGyro) {
		steerGyro = 0
	}
	return Estimate{
		T:         rec.T,
		S:         st.s,
		SpeedMS:   st.filter.StateAt(0),
		GradeRad:  st.filter.StateAt(1),
		GradeVar:  st.filter.CovarianceAt(1, 1),
		SteerRate: steerGyro - st.steer.RoadRateAt(st.s, math.Max(st.lastSpeedo, 0.1)),
	}, nil
}

// velocityOf extracts the configured source's speed from one record. The
// accelerometer-derived source needs the whole trace and is not available in
// streaming mode.
func (st *Streaming) velocityOf(rec sensors.Record) (float64, bool, error) {
	switch st.source {
	case sensors.SourceGPS:
		return rec.GPSSpeed, rec.GPSValid, nil
	case sensors.SourceSpeedometer:
		return rec.Speedometer, true, nil
	case sensors.SourceCANBus:
		return rec.CANSpeed, true, nil
	case sensors.SourceAccelerometer:
		return 0, false, errors.New("core: accelerometer velocity is not available in streaming mode (dead reckoning needs the whole trace)")
	default:
		return 0, false, fmt.Errorf("core: unknown velocity source %d", int(st.source))
	}
}
