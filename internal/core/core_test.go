package core

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/lanechange"
	"roadgrade/internal/mat"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// simulate builds a trip + sensor trace on a road.
func simulate(t testing.TB, r *road.Road, speedMS float64, laneChangesPerKm float64, seed int64) (*vehicle.Trip, *sensors.Trace) {
	t.Helper()
	d := vehicle.DefaultDriver(speedMS)
	d.LaneChangesPerKm = laneChangesPerKm
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: d, Rng: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(seed+1000)))
	if err != nil {
		t.Fatal(err)
	}
	return trip, trace
}

func TestGradeModelPredictConsistency(t *testing.T) {
	// On a constant grade with â = g·sinθ (steady speed), v must not move.
	m := &GradeModel{Params: vehicle.DefaultParams(), DT: 0.05}
	theta := road.Deg(3)
	m.Accel = vehicle.Gravity * math.Sin(theta)
	km := m.kalmanModel()
	x := km.Predict([]float64{15, theta})
	if math.Abs(x[0]-15) > 1e-9 {
		t.Errorf("v drifted to %v at steady state", x[0])
	}
	// Uphill with â = 0 (coasting): v must fall.
	m.Accel = 0
	x = km.Predict([]float64{15, theta})
	if x[0] >= 15 {
		t.Errorf("coasting uphill should slow down, got %v", x[0])
	}
}

func TestGradeModelJacobianMatchesFiniteDifference(t *testing.T) {
	m := &GradeModel{Params: vehicle.DefaultParams(), DT: 0.05, Accel: 1.2}
	km := m.kalmanModel()
	x := []float64{12, road.Deg(2)}
	jac := km.PredictJacobian(x)
	const h = 1e-7
	for j := 0; j < 2; j++ {
		xp := mat.CloneVec(x)
		xm := mat.CloneVec(x)
		xp[j] += h
		xm[j] -= h
		// Clone: the model may reuse its output buffer across Predict calls.
		fp := mat.CloneVec(km.Predict(xp))
		fm := mat.CloneVec(km.Predict(xm))
		for i := 0; i < 2; i++ {
			fd := (fp[i] - fm[i]) / (2 * h)
			if math.Abs(fd-jac.At(i, j)) > 1e-5 {
				t.Errorf("jacobian (%d,%d) = %v, finite difference %v", i, j, jac.At(i, j), fd)
			}
		}
	}
}

func TestClampGrade(t *testing.T) {
	if clampGrade(1) != math.Pi/6 || clampGrade(-1) != -math.Pi/6 {
		t.Error("clamp bounds wrong")
	}
	if clampGrade(0.1) != 0.1 {
		t.Error("clamp modified in-range value")
	}
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := Config{Params: vehicle.Params{MassKg: -1}}
	if _, err := NewPipeline(bad); err == nil {
		t.Error("invalid params should error")
	}
}

func TestAdjustErrors(t *testing.T) {
	p, _ := NewPipeline(Config{})
	r, _ := road.StraightRoad("x", 300, 0, 1)
	_, trace := simulate(t, r, 12, 0, 1)
	if _, err := p.Adjust(nil, r.Line()); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := p.Adjust(trace, nil); err == nil {
		t.Error("nil line should error")
	}
}

func TestEstimateTrackErrors(t *testing.T) {
	p, _ := NewPipeline(Config{})
	r, _ := road.StraightRoad("x", 300, 0, 1)
	_, trace := simulate(t, r, 12, 0, 2)
	adj, err := p.Adjust(trace, r.Line())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EstimateTrack(nil, adj, sensors.SourceGPS); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := p.EstimateTrack(trace, nil, sensors.SourceGPS); err == nil {
		t.Error("nil adjusted should error")
	}
	if _, err := p.EstimateTrack(trace, adj, sensors.VelocitySource(99)); err == nil {
		t.Error("bad source should error")
	}
}

func TestEstimateTrackConstantGrade(t *testing.T) {
	const grade = 3.0 // degrees
	r, err := road.StraightRoad("grade", 1200, road.Deg(grade), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 13, 0, 3)
	p, _ := NewPipeline(Config{})
	adj, err := p.Adjust(trace, r.Line())
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range sensors.AllSources() {
		tr, err := p.EstimateTrack(trace, adj, src)
		if err != nil {
			t.Fatalf("%v: %v", src, err)
		}
		if tr.Len() != len(trace.Records) {
			t.Fatalf("%v: track len %d != %d", src, tr.Len(), len(trace.Records))
		}
		// After convergence the estimate must be near the true grade.
		var sum float64
		var n int
		for i := range tr.T {
			if tr.T[i] < 30 {
				continue
			}
			sum += tr.GradeRad[i]
			n++
		}
		got := sum / float64(n) * 180 / math.Pi
		if math.Abs(got-grade) > 0.5 {
			t.Errorf("%v: mean grade %v deg, want ~%v", src, got, grade)
		}
	}
}

func TestEstimateTrackDownhill(t *testing.T) {
	r, err := road.StraightRoad("down", 1000, road.Deg(-2.5), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 13, 0, 4)
	p, _ := NewPipeline(Config{})
	adj, _ := p.Adjust(trace, r.Line())
	tr, err := p.EstimateTrack(trace, adj, sensors.SourceSpeedometer)
	if err != nil {
		t.Fatal(err)
	}
	// Median over the final 10 s (a single endpoint sample is at the mercy
	// of one noise draw).
	var tail []float64
	horizon := tr.T[tr.Len()-1] - 10
	for i := range tr.T {
		if tr.T[i] >= horizon {
			tail = append(tail, tr.GradeRad[i]*180/math.Pi)
		}
	}
	med := median(tail)
	if math.Abs(med-(-2.5)) > 0.6 {
		t.Errorf("final grade %v deg, want ~-2.5", med)
	}
}

func TestEstimateAllRedRoute(t *testing.T) {
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 40.0/3.6, 2, 5)
	p, err := NewPipeline(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := p.EstimateAll(trace, r.Line())
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 4 {
		t.Fatalf("tracks = %d, want 4", len(tracks))
	}
	seen := map[sensors.VelocitySource]bool{}
	for _, tr := range tracks {
		seen[tr.Source] = true
		// Median absolute error per track should be sub-degree.
		var errs []float64
		for i := range tr.T {
			if tr.T[i] < 30 {
				continue
			}
			errs = append(errs, math.Abs(tr.GradeRad[i]-r.GradeAt(tr.S[i]))*180/math.Pi)
		}
		med := median(errs)
		if med > 0.8 {
			t.Errorf("%v: median error %v deg too large", tr.Source, med)
		}
		if tr.NIS <= 0 {
			t.Errorf("%v: NIS not recorded", tr.Source)
		}
	}
	if len(seen) != 4 {
		t.Errorf("duplicate sources: %v", seen)
	}
}

func TestLocalizationAccuracy(t *testing.T) {
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 40.0/3.6, 0, 6)
	p, _ := NewPipeline(Config{})
	adj, err := p.Adjust(trace, r.Line())
	if err != nil {
		t.Fatal(err)
	}
	// Compare localized S against ground truth; after settling it should
	// stay within a few meters.
	var worst float64
	for i, st := range trace.Truth {
		if st.T < 10 {
			continue
		}
		if e := math.Abs(adj.S[i] - st.S); e > worst {
			worst = e
		}
	}
	if worst > 8 {
		t.Errorf("worst localization error %v m", worst)
	}
}

func TestTwoPassBeatsSinglePass(t *testing.T) {
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 40.0/3.6, 0, 7)
	run := func(disable bool) float64 {
		p, err := NewPipeline(Config{DisableTwoPass: disable})
		if err != nil {
			t.Fatal(err)
		}
		adj, err := p.Adjust(trace, r.Line())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := p.EstimateTrack(trace, adj, sensors.SourceCANBus)
		if err != nil {
			t.Fatal(err)
		}
		var errs []float64
		for i := range tr.T {
			if tr.T[i] < 30 {
				continue
			}
			errs = append(errs, math.Abs(tr.GradeRad[i]-r.GradeAt(tr.S[i])))
		}
		return median(errs)
	}
	single := run(true)
	two := run(false)
	if two >= single {
		t.Errorf("two-pass %v not better than single %v", two, single)
	}
}

func TestLaneChangeCorrectionImproves(t *testing.T) {
	// On a two-lane road with aggressive lane changing, enabling the
	// Eq. (2) correction should not hurt and typically helps the track.
	r, err := road.StraightRoad("two", 2500, road.Deg(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := vehicle.DefaultDriver(12)
	d.LaneChangesPerKm = 4
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: d, Rng: rand.New(rand.NewSource(8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trip.Changes) == 0 {
		t.Skip("no lane changes in this seed")
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	th := lanechange.Thresholds{DeltaRad: 0.1, TMinS: 0.5}
	meanErr := func(disable bool) float64 {
		p, err := NewPipeline(Config{Thresholds: th, DisableLaneChangeCorrection: disable})
		if err != nil {
			t.Fatal(err)
		}
		adj, err := p.Adjust(trace, r.Line())
		if err != nil {
			t.Fatal(err)
		}
		if !disable && len(adj.Detections) == 0 {
			t.Skip("detector missed all changes in this seed")
		}
		tr, err := p.EstimateTrack(trace, adj, sensors.SourceSpeedometer)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		for i := range tr.T {
			if tr.T[i] < 30 {
				continue
			}
			sum += math.Abs(tr.GradeRad[i] - r.GradeAt(tr.S[i]))
			n++
		}
		return sum / float64(n)
	}
	with := meanErr(false)
	without := meanErr(true)
	if with > without*1.15 {
		t.Errorf("correction made things notably worse: with=%v without=%v", with, without)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func BenchmarkEstimateAllRedRoute(b *testing.B) {
	r, err := road.RedRoute()
	if err != nil {
		b.Fatal(err)
	}
	_, trace := simulate(b, r, 40.0/3.6, 2, 10)
	p, err := NewPipeline(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.EstimateAll(trace, r.Line()); err != nil {
			b.Fatal(err)
		}
	}
}
