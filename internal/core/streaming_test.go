package core

import (
	"math"
	"testing"

	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

func TestNewStreamingValidation(t *testing.T) {
	r, _ := road.StraightRoad("x", 300, 0, 1)
	if _, err := NewStreaming(Config{}, nil, sensors.SourceCANBus, 0.05); err == nil {
		t.Error("nil line should error")
	}
	if _, err := NewStreaming(Config{}, r.Line(), sensors.SourceCANBus, 0); err == nil {
		t.Error("zero dt should error")
	}
	bad := Config{Params: vehicleParamsBad()}
	if _, err := NewStreaming(bad, r.Line(), sensors.SourceCANBus, 0.05); err == nil {
		t.Error("invalid params should error")
	}
}

func TestStreamingTracksGrade(t *testing.T) {
	const grade = 2.5
	r, err := road.StraightRoad("stream", 1500, road.Deg(grade), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 13, 0, 31)
	st, err := NewStreaming(Config{}, r.Line(), sensors.SourceCANBus, trace.DT)
	if err != nil {
		t.Fatal(err)
	}
	var last Estimate
	var errsAfterConverge []float64
	for _, rec := range trace.Records {
		est, err := st.Push(rec)
		if err != nil {
			t.Fatal(err)
		}
		last = est
		if rec.T > 40 {
			errsAfterConverge = append(errsAfterConverge,
				math.Abs(est.GradeRad-road.Deg(grade))*180/math.Pi)
		}
	}
	if len(errsAfterConverge) == 0 {
		t.Fatal("trip too short to converge")
	}
	med := median(errsAfterConverge)
	if med > 0.5 {
		t.Errorf("streaming median error %v deg", med)
	}
	// Localization stays near the true end of the road.
	if math.Abs(last.S-1500) > 30 {
		t.Errorf("final S = %v, want ~1500", last.S)
	}
	if last.GradeVar <= 0 {
		t.Error("variance not reported")
	}
}

func TestStreamingMatchesSinglePassPipeline(t *testing.T) {
	// Streaming is the causal single-pass filter; it must agree closely
	// with the batch pipeline run with DisableTwoPass on the same source.
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 40.0/3.6, 0, 32)

	p, err := NewPipeline(Config{DisableTwoPass: true, DisableLaneChangeCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	adj, err := p.Adjust(trace, r.Line())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.EstimateTrack(trace, adj, sensors.SourceCANBus)
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStreaming(Config{}, r.Line(), sensors.SourceCANBus, trace.DT)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i, rec := range trace.Records {
		est, err := st.Push(rec)
		if err != nil {
			t.Fatal(err)
		}
		if rec.T < 20 {
			continue
		}
		if d := math.Abs(est.GradeRad - batch.GradeRad[i]); d > worst {
			worst = d
		}
	}
	// NIS scaling affects Var only; state trajectories should be identical
	// up to floating noise.
	if worst > 1e-9 {
		t.Errorf("streaming diverges from single-pass batch by %v rad", worst)
	}
}

func TestStreamingAccelerometerUnsupported(t *testing.T) {
	r, _ := road.StraightRoad("x", 300, 0, 1)
	st, err := NewStreaming(Config{}, r.Line(), sensors.SourceAccelerometer, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Push(sensors.Record{}); err == nil {
		t.Error("accelerometer source should be rejected in streaming mode")
	}
	st2, err := NewStreaming(Config{}, r.Line(), sensors.VelocitySource(99), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Push(sensors.Record{}); err == nil {
		t.Error("unknown source should be rejected")
	}
}

// vehicleParamsBad builds an invalid parameter set.
func vehicleParamsBad() vehicle.Params {
	p := vehicle.DefaultParams()
	p.MassKg = -1
	return p
}

func BenchmarkStreamingPush(b *testing.B) {
	r, err := road.StraightRoad("stream", 2000, road.Deg(2), 1)
	if err != nil {
		b.Fatal(err)
	}
	_, trace := simulate(b, r, 13, 0, 33)
	st, err := NewStreaming(Config{}, r.Line(), sensors.SourceCANBus, trace.DT)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Push(trace.Records[i%len(trace.Records)]); err != nil {
			b.Fatal(err)
		}
	}
}
