package core

import (
	"math"
	"testing"

	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
)

// TestStreamingSurvivesGPSOutage drops every GPS fix for 30 s mid-drive: the
// causal estimator must stay finite throughout (dead-reckoning through the
// gap) and re-converge to the true grade once fixes return.
func TestStreamingSurvivesGPSOutage(t *testing.T) {
	const grade = 2.5
	r, err := road.StraightRoad("outage", 2500, road.Deg(grade), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, trace := simulate(t, r, 13, 0, 47)

	const outageStart, outageEnd = 60.0, 90.0
	for i := range trace.Records {
		if rec := &trace.Records[i]; rec.T >= outageStart && rec.T < outageEnd {
			rec.GPSValid = false
			rec.GPSE, rec.GPSN, rec.GPSAlt, rec.GPSSpeed = 0, 0, 0, 0
		}
	}

	st, err := NewStreaming(Config{}, r.Line(), sensors.SourceCANBus, trace.DT)
	if err != nil {
		t.Fatal(err)
	}
	var errsAfterRecovery []float64
	for _, rec := range trace.Records {
		est, err := st.Push(rec)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]float64{
			"S": est.S, "SpeedMS": est.SpeedMS, "GradeRad": est.GradeRad, "GradeVar": est.GradeVar,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite %s at t=%.2f (outage [%.0f,%.0f))", name, rec.T, outageStart, outageEnd)
			}
		}
		// Allow 30 s after fixes return before demanding convergence.
		if rec.T > outageEnd+30 {
			errsAfterRecovery = append(errsAfterRecovery,
				math.Abs(est.GradeRad-road.Deg(grade))*180/math.Pi)
		}
	}
	if len(errsAfterRecovery) == 0 {
		t.Fatal("trip too short to observe recovery")
	}
	if med := median(errsAfterRecovery); med > 0.5 {
		t.Errorf("median grade error %v deg after outage, want re-convergence under 0.5", med)
	}
}
