// Package frame implements the smartphone coordinate alignment system of
// §III-A: 3-D rotations between the phone frame (X_B, Y_B, Z_B), the vehicle
// frame and the road/earth frame (X_E, Y_E, Z_E); recovery of an unknown
// phone mounting orientation from accelerometer statistics (the role of
// reference [14]); and the steering-rate derivation
// w_steer = ŵ_vehicle − w_road that feeds lane-change detection.
package frame

import (
	"errors"
	"fmt"
	"math"
)

// Vec3 is a 3-vector in some frame, components (X, Y, Z).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Norm returns the Euclidean norm.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Rotation is a 3x3 rotation matrix, row-major.
type Rotation [9]float64

// IdentityRotation returns the identity rotation.
func IdentityRotation() Rotation {
	return Rotation{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// RotZ returns a rotation by angle a about the Z axis (yaw, CCW positive).
func RotZ(a float64) Rotation {
	c, s := math.Cos(a), math.Sin(a)
	return Rotation{c, -s, 0, s, c, 0, 0, 0, 1}
}

// RotX returns a rotation by angle a about the X axis (roll-style).
func RotX(a float64) Rotation {
	c, s := math.Cos(a), math.Sin(a)
	return Rotation{1, 0, 0, 0, c, -s, 0, s, c}
}

// RotY returns a rotation by angle a about the Y axis (pitch-style).
func RotY(a float64) Rotation {
	c, s := math.Cos(a), math.Sin(a)
	return Rotation{c, 0, s, 0, 1, 0, -s, 0, c}
}

// Mul returns r ∘ q (apply q, then r).
func (r Rotation) Mul(q Rotation) Rotation {
	var out Rotation
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += r[i*3+k] * q[k*3+j]
			}
			out[i*3+j] = s
		}
	}
	return out
}

// Apply rotates v.
func (r Rotation) Apply(v Vec3) Vec3 {
	return Vec3{
		X: r[0]*v.X + r[1]*v.Y + r[2]*v.Z,
		Y: r[3]*v.X + r[4]*v.Y + r[5]*v.Z,
		Z: r[6]*v.X + r[7]*v.Y + r[8]*v.Z,
	}
}

// Transpose returns the inverse rotation.
func (r Rotation) Transpose() Rotation {
	return Rotation{
		r[0], r[3], r[6],
		r[1], r[4], r[7],
		r[2], r[5], r[8],
	}
}

// IsOrthonormal checks R Rᵀ ≈ I within tol.
func (r Rotation) IsOrthonormal(tol float64) bool {
	prod := r.Mul(r.Transpose())
	id := IdentityRotation()
	for i := range prod {
		if math.Abs(prod[i]-id[i]) > tol {
			return false
		}
	}
	return true
}

// Mount is the phone's orientation inside the vehicle, as intrinsic
// Z-Y-X (yaw, pitch, roll) angles from the aligned pose: Y_B forward,
// X_B right, Z_B up.
type Mount struct {
	Yaw   float64 // rotation about vehicle up axis
	Pitch float64 // rotation about vehicle lateral axis
	Roll  float64 // rotation about vehicle forward axis
}

// Rotation returns the vehicle-to-phone rotation: p_phone = R · p_vehicle.
func (m Mount) Rotation() Rotation {
	// Intrinsic yaw (Z), then pitch (X: about lateral axis since Y is
	// forward), then roll (Y: about forward axis). Inverted to map
	// vehicle->phone.
	vehicleToPhone := RotY(m.Roll).Mul(RotX(m.Pitch)).Mul(RotZ(m.Yaw))
	return vehicleToPhone
}

// PhoneReading converts a vehicle-frame quantity into what the phone's
// sensors report under this mount.
func (m Mount) PhoneReading(vehicleFrame Vec3) Vec3 {
	return m.Rotation().Apply(vehicleFrame)
}

// VehicleReading converts a phone-frame reading back to the vehicle frame.
func (m Mount) VehicleReading(phoneFrame Vec3) Vec3 {
	return m.Rotation().Transpose().Apply(phoneFrame)
}

// EstimateMount recovers the phone mounting orientation from accelerometer
// samples using the standard two-phase procedure of [14]: pitch and roll
// come from the mean gravity direction while the vehicle is stationary;
// yaw comes from the horizontal direction of forward acceleration while the
// vehicle speeds up in a straight line.
//
// stationary carries phone-frame specific-force samples at rest (gravity
// only); accelerating carries phone-frame samples during forward
// acceleration (gravity + forward force).
func EstimateMount(stationary, accelerating []Vec3) (Mount, error) {
	if len(stationary) == 0 || len(accelerating) == 0 {
		return Mount{}, errors.New("frame: need both stationary and accelerating samples")
	}
	gMean := meanVec(stationary)
	gNorm := gMean.Norm()
	if gNorm < 1 {
		return Mount{}, fmt.Errorf("frame: stationary gravity magnitude %v too small", gNorm)
	}

	// In the aligned pose gravity reads (0, 0, +g) (specific force of a
	// phone at rest points up). Find the rotation that moves the measured
	// gravity back to +Z: first roll about Y, then pitch about X.
	g := gMean.Scale(1 / gNorm)
	roll := math.Atan2(g.X, g.Z)
	gAfterRoll := RotY(-roll).Apply(g)
	pitch := math.Atan2(-gAfterRoll.Y, gAfterRoll.Z)
	level := RotX(-pitch).Mul(RotY(-roll))

	// Horizontal forward acceleration direction gives yaw.
	aMean := meanVec(accelerating).Sub(gMean)
	aLevel := level.Apply(aMean)
	horiz := math.Hypot(aLevel.X, aLevel.Y)
	if horiz < 0.05 {
		return Mount{}, fmt.Errorf("frame: forward acceleration %v too small to resolve yaw", horiz)
	}
	// Forward is +Y in the aligned pose. After levelling, the residual
	// rotation is RotZ(yaw), which maps vehicle-forward (0, a, 0) to
	// (-a·sin(yaw), a·cos(yaw), 0); invert that.
	yaw := math.Atan2(-aLevel.X, aLevel.Y)
	return Mount{Yaw: yaw, Pitch: pitch, Roll: roll}, nil
}

func meanVec(vs []Vec3) Vec3 {
	var sum Vec3
	for _, v := range vs {
		sum = sum.Add(v)
	}
	return sum.Scale(1 / float64(len(vs)))
}
