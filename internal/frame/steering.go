package frame

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/geo"
)

// SteeringEstimator derives the vehicle steering rate from the gyroscope and
// map geography:
//
//	w_steer(t) = ŵ_vehicle(t) − w_road(t)
//
// ŵ_vehicle is the measured yaw rate. w_road comes from the road polyline:
// the map heading is evaluated at coarse granularity (HeadingWindowM-meter
// chords), matching how real map data resolves direction. The coarseness is
// deliberate — it is why an S-curve leaks paired bumps into w_steer and must
// be rejected by the horizontal-displacement test (DESIGN.md interpretation
// choice 2).
// Queries sweep monotonically along the road, so the estimator carries
// polyline cursors that make each map-heading evaluation O(1); it is not
// safe for concurrent use (each trace gets its own estimator).
type SteeringEstimator struct {
	// Line is the map geometry of the road being driven.
	Line *geo.Polyline
	// HeadingWindowM is the chord length used to evaluate map headings
	// (default DefaultHeadingWindowM).
	HeadingWindowM float64

	// hints cache the polyline segment of the previous query for the four
	// chord endpoints evaluated per tick (s±window and s±window/2).
	hints [4]int
}

// DefaultHeadingWindowM is the default map-heading granularity: block scale
// (250 m). It must exceed the extent of an S-curve so the full curve rate
// leaks into w_steer and the Eq. (1) displacement test can reject it; at
// finer granularity the residual heading deviation partially cancels and an
// S-curve can masquerade as a lane change.
const DefaultHeadingWindowM = 250.0

// NewSteeringEstimator validates and returns an estimator.
func NewSteeringEstimator(line *geo.Polyline, headingWindowM float64) (*SteeringEstimator, error) {
	if line == nil {
		return nil, errors.New("frame: nil road line")
	}
	if headingWindowM <= 0 {
		headingWindowM = DefaultHeadingWindowM
	}
	if headingWindowM > line.Length() {
		headingWindowM = line.Length()
	}
	return &SteeringEstimator{Line: line, HeadingWindowM: headingWindowM}, nil
}

// mapHeading returns the coarse map heading at arc length s: the direction
// of the chord spanning the window centred on s. The hint pointers cache
// the chord endpoints' polyline segments across calls; nil hints fall back
// to the plain binary search with identical results.
func (e *SteeringEstimator) mapHeading(s float64, h0, h1 *int) float64 {
	h := e.HeadingWindowM / 2
	s0 := math.Max(0, s-h)
	s1 := math.Min(e.Line.Length(), s+h)
	a := e.Line.AtHint(s0, h0)
	b := e.Line.AtHint(s1, h1)
	return math.Atan2(b.N-a.N, b.E-a.E)
}

// RoadRateAt returns w_road at arc length s for a vehicle moving at speed v:
// the coarse heading change across the window divided by the time to
// traverse it.
func (e *SteeringEstimator) RoadRateAt(s, v float64) float64 {
	if v <= 0 {
		return 0
	}
	h := e.HeadingWindowM / 2
	s0 := math.Max(0, s-h)
	s1 := math.Min(e.Line.Length(), s+h)
	if s1-s0 < 1e-9 {
		return 0
	}
	d0 := e.mapHeading(s0, &e.hints[0], &e.hints[1])
	d1 := e.mapHeading(s1, &e.hints[2], &e.hints[3])
	return geo.AngleDiff(d0, d1) * v / (s1 - s0)
}

// SteerRates computes the steering-rate profile from gyroscope yaw rates and
// measured speeds sampled at interval dt. Arc position is dead-reckoned by
// integrating speed (odometry), which is how the phone localizes itself on
// the map between GPS fixes.
func (e *SteeringEstimator) SteerRates(dt float64, gyroYaw, speed []float64) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("frame: invalid dt %v", dt)
	}
	if len(gyroYaw) != len(speed) {
		return nil, fmt.Errorf("frame: gyro/speed length mismatch %d vs %d", len(gyroYaw), len(speed))
	}
	out := make([]float64, len(gyroYaw))
	var s float64
	for i := range gyroYaw {
		out[i] = gyroYaw[i] - e.RoadRateAt(s, speed[i])
		s += speed[i] * dt
	}
	return out, nil
}
