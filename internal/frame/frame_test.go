package frame

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %+v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestRotationsOrthonormal(t *testing.T) {
	rots := []Rotation{
		IdentityRotation(),
		RotX(0.3), RotY(-1.1), RotZ(2.5),
		RotZ(0.5).Mul(RotX(0.2)).Mul(RotY(-0.7)),
	}
	for i, r := range rots {
		if !r.IsOrthonormal(1e-12) {
			t.Errorf("rotation %d not orthonormal", i)
		}
	}
}

func TestRotZApply(t *testing.T) {
	// 90° about Z maps +X to +Y.
	got := RotZ(math.Pi / 2).Apply(Vec3{1, 0, 0})
	if math.Abs(got.X) > 1e-12 || math.Abs(got.Y-1) > 1e-12 || math.Abs(got.Z) > 1e-12 {
		t.Errorf("RotZ(90°)·X = %+v, want +Y", got)
	}
}

func TestRotXApply(t *testing.T) {
	// 90° about X maps +Y to +Z.
	got := RotX(math.Pi / 2).Apply(Vec3{0, 1, 0})
	if math.Abs(got.Y) > 1e-12 || math.Abs(got.Z-1) > 1e-12 {
		t.Errorf("RotX(90°)·Y = %+v, want +Z", got)
	}
}

func TestRotYApply(t *testing.T) {
	// 90° about Y maps +Z to +X.
	got := RotY(math.Pi / 2).Apply(Vec3{0, 0, 1})
	if math.Abs(got.Z) > 1e-12 || math.Abs(got.X-1) > 1e-12 {
		t.Errorf("RotY(90°)·Z = %+v, want +X", got)
	}
}

func TestTransposeInverts(t *testing.T) {
	f := func(yaw, pitch, roll float64) bool {
		r := RotZ(math.Mod(yaw, math.Pi)).
			Mul(RotX(math.Mod(pitch, math.Pi))).
			Mul(RotY(math.Mod(roll, math.Pi)))
		v := Vec3{1.2, -0.7, 2.1}
		back := r.Transpose().Apply(r.Apply(v))
		return back.Sub(v).Norm() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMountRoundTrip(t *testing.T) {
	m := Mount{Yaw: 0.4, Pitch: -0.15, Roll: 0.08}
	v := Vec3{0.3, 1.7, 9.5}
	phone := m.PhoneReading(v)
	back := m.VehicleReading(phone)
	if back.Sub(v).Norm() > 1e-12 {
		t.Errorf("mount round trip error %v", back.Sub(v).Norm())
	}
}

func TestEstimateMountRecovers(t *testing.T) {
	const g = 9.81
	tests := []Mount{
		{},
		{Yaw: 0.6},
		{Pitch: 0.2},
		{Roll: -0.25},
		{Yaw: -1.1, Pitch: 0.12, Roll: 0.18},
		{Yaw: 2.2, Pitch: -0.3, Roll: -0.1},
	}
	rng := rand.New(rand.NewSource(3))
	for _, want := range tests {
		// Stationary: gravity specific force (0,0,g) in vehicle frame.
		// Accelerating: gravity + 1.5 m/s² forward.
		var stationary, accelerating []Vec3
		for i := 0; i < 200; i++ {
			noise := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.02)
			stationary = append(stationary, want.PhoneReading(Vec3{0, 0, g}).Add(noise))
			accelerating = append(accelerating, want.PhoneReading(Vec3{0, 1.5, g}).Add(noise))
		}
		got, err := EstimateMount(stationary, accelerating)
		if err != nil {
			t.Fatalf("mount %+v: %v", want, err)
		}
		if math.Abs(geo.AngleDiff(got.Yaw, want.Yaw)) > 0.02 ||
			math.Abs(got.Pitch-want.Pitch) > 0.02 ||
			math.Abs(got.Roll-want.Roll) > 0.02 {
			t.Errorf("EstimateMount = %+v, want %+v", got, want)
		}
	}
}

func TestEstimateMountErrors(t *testing.T) {
	if _, err := EstimateMount(nil, []Vec3{{0, 1, 9.8}}); err == nil {
		t.Error("missing stationary samples should error")
	}
	if _, err := EstimateMount([]Vec3{{0, 0, 9.8}}, nil); err == nil {
		t.Error("missing accelerating samples should error")
	}
	// Tiny gravity (broken data).
	if _, err := EstimateMount([]Vec3{{0, 0, 0.1}}, []Vec3{{0, 1, 0.1}}); err == nil {
		t.Error("tiny gravity should error")
	}
	// No forward acceleration -> yaw unresolvable.
	still := []Vec3{{0, 0, 9.8}}
	if _, err := EstimateMount(still, still); err == nil {
		t.Error("no forward acceleration should error")
	}
}

func TestNewSteeringEstimator(t *testing.T) {
	if _, err := NewSteeringEstimator(nil, 80); err == nil {
		t.Error("nil line should error")
	}
	line, _ := geo.NewPolyline([]geo.ENU{{E: 0, N: 0}, {E: 50, N: 0}})
	e, err := NewSteeringEstimator(line, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.HeadingWindowM != 50 {
		t.Errorf("window clamped to %v, want 50", e.HeadingWindowM)
	}
}

func TestSteerRatesStraightRoad(t *testing.T) {
	// On a straight road, w_road = 0, so w_steer equals the gyro reading.
	line, _ := geo.NewPolyline([]geo.ENU{{E: 0, N: 0}, {E: 1000, N: 0}})
	e, err := NewSteeringEstimator(line, 80)
	if err != nil {
		t.Fatal(err)
	}
	gyro := []float64{0, 0.1, -0.1, 0.05}
	speed := []float64{10, 10, 10, 10}
	got, err := e.SteerRates(0.05, gyro, speed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gyro {
		if math.Abs(got[i]-gyro[i]) > 1e-9 {
			t.Errorf("steer[%d] = %v, want %v", i, got[i], gyro[i])
		}
	}
}

func TestSteerRatesCenteredCurveCancels(t *testing.T) {
	// A vehicle tracking the centerline of a long constant curve has
	// gyro = true road rate; the coarse map rate approaches the same value
	// inside the arc, so steering residual is small there.
	b := road.NewPathBuilder(geo.ENU{}, 0, 2)
	b.Straight(300).Arc(200, 0.8).Straight(300)
	line, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSteeringEstimator(line, 40)
	if err != nil {
		t.Fatal(err)
	}
	const v, dt = 12.0, 0.05
	n := int(line.Length() / v / dt)
	gyro := make([]float64, n)
	speed := make([]float64, n)
	var s float64
	for i := 0; i < n; i++ {
		speed[i] = v
		gyro[i] = line.CurvatureAt(s, 2) * v // true yaw rate on centerline
		s += v * dt
	}
	steer, err := e.SteerRates(dt, gyro, speed)
	if err != nil {
		t.Fatal(err)
	}
	// Deep inside the arc (skip the window-length transition at entry and
	// exit) the residual must be far below the bump threshold.
	arcStart, arcEnd := 300.0, 300+200*0.8
	s = 0
	for i := 0; i < n; i++ {
		if s > arcStart+60 && s < arcEnd-60 {
			if math.Abs(steer[i]) > 0.02 {
				t.Fatalf("residual %v at s=%v inside arc", steer[i], s)
			}
		}
		s += v * dt
	}
}

func TestSteerRatesSCurveLeaksBumps(t *testing.T) {
	// Through a tight S-curve, the coarse map heading smooths the true
	// rate, so the residual w_steer shows large paired bumps — the
	// false-positive source the displacement test must reject.
	r, err := road.SCurveRoad(60, road.Deg(35))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSteeringEstimator(r.Line(), 80)
	if err != nil {
		t.Fatal(err)
	}
	const v, dt = 11.0, 0.05
	n := int(r.Length() / v / dt)
	gyro := make([]float64, n)
	speed := make([]float64, n)
	var s float64
	for i := 0; i < n; i++ {
		speed[i] = v
		gyro[i] = r.Line().CurvatureAt(s, 2) * v
		s += v * dt
	}
	steer, err := e.SteerRates(dt, gyro, speed)
	if err != nil {
		t.Fatal(err)
	}
	var maxPos, maxNeg float64
	for _, w := range steer {
		maxPos = math.Max(maxPos, w)
		maxNeg = math.Min(maxNeg, w)
	}
	if maxPos < 0.08 || maxNeg > -0.08 {
		t.Errorf("S-curve residual bumps too small: +%v %v", maxPos, maxNeg)
	}
}

func TestSteerRatesErrors(t *testing.T) {
	line, _ := geo.NewPolyline([]geo.ENU{{E: 0, N: 0}, {E: 100, N: 0}})
	e, _ := NewSteeringEstimator(line, 50)
	if _, err := e.SteerRates(0, []float64{1}, []float64{1}); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := e.SteerRates(0.05, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRoadRateAtZeroSpeed(t *testing.T) {
	line, _ := geo.NewPolyline([]geo.ENU{{E: 0, N: 0}, {E: 100, N: 0}})
	e, _ := NewSteeringEstimator(line, 50)
	if got := e.RoadRateAt(50, 0); got != 0 {
		t.Errorf("RoadRateAt(v=0) = %v", got)
	}
}

func BenchmarkSteerRates(b *testing.B) {
	r, err := road.SCurveRoad(60, road.Deg(35))
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewSteeringEstimator(r.Line(), 80)
	if err != nil {
		b.Fatal(err)
	}
	n := 2000
	gyro := make([]float64, n)
	speed := make([]float64, n)
	for i := range speed {
		speed[i] = 11
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.SteerRates(0.05, gyro, speed); err != nil {
			b.Fatal(err)
		}
	}
}
