// Package smoothing implements the signal smoothing used by the lane-change
// detector. The paper (§III-B1) applies local regression [16] to filter
// measuring noise and drift noise out of the steering-rate profile before
// bump features are extracted; this package provides that LOESS smoother
// along with simpler moving-average and exponential filters used elsewhere
// in the pipeline.
package smoothing

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"roadgrade/internal/mat"
)

// ErrBadSpan is returned when a LOESS span yields fewer points than the
// polynomial degree requires.
var ErrBadSpan = errors.New("smoothing: span too small for polynomial degree")

// Loess is a local-regression smoother (Cleveland's LOWESS/LOESS family):
// for every evaluation point it fits a weighted least-squares polynomial to
// the nearest Span fraction of samples, with tricube weights, and returns the
// local fit value.
type Loess struct {
	// Span is the fraction of samples in each local window, in (0, 1].
	Span float64
	// Degree is the local polynomial degree (1 or 2).
	Degree int
}

// NewLoess returns a Loess smoother with validated parameters.
func NewLoess(span float64, degree int) (*Loess, error) {
	if span <= 0 || span > 1 {
		return nil, fmt.Errorf("smoothing: span %v out of range (0,1]", span)
	}
	if degree < 1 || degree > 2 {
		return nil, fmt.Errorf("smoothing: degree %d unsupported (want 1 or 2)", degree)
	}
	return &Loess{Span: span, Degree: degree}, nil
}

// Smooth fits the smoother at every sample location and returns the smoothed
// series. xs must be strictly increasing and the slices must be equal length.
func (l *Loess) Smooth(xs, ys []float64) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("smoothing: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, errors.New("smoothing: empty input")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("smoothing: xs not strictly increasing at %d", i)
		}
	}
	n := len(xs)
	window := int(math.Ceil(l.Span * float64(n)))
	if window < l.Degree+1 {
		return nil, ErrBadSpan
	}
	if window > n {
		window = n
	}
	out := make([]float64, n)
	for i := range xs {
		v, err := l.fitAt(xs, ys, xs[i], window)
		if err != nil {
			return nil, fmt.Errorf("smoothing: fit at index %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// At evaluates the smoother at an arbitrary x given the sample set.
func (l *Loess) At(xs, ys []float64, x float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, errors.New("smoothing: invalid sample set")
	}
	window := int(math.Ceil(l.Span * float64(len(xs))))
	if window < l.Degree+1 {
		return 0, ErrBadSpan
	}
	if window > len(xs) {
		window = len(xs)
	}
	return l.fitAt(xs, ys, x, window)
}

// fitAt performs one weighted polynomial fit centred at x over the nearest
// window samples.
func (l *Loess) fitAt(xs, ys []float64, x float64, window int) (float64, error) {
	lo, hi := nearestWindow(xs, x, window)
	// Maximum distance in the window defines the tricube scale.
	maxDist := math.Max(math.Abs(xs[lo]-x), math.Abs(xs[hi-1]-x))
	if maxDist == 0 {
		// All window points coincide with x; return their mean.
		var s float64
		for i := lo; i < hi; i++ {
			s += ys[i]
		}
		return s / float64(hi-lo), nil
	}

	// Weighted normal equations for a degree-d polynomial in (t = xi - x):
	// minimize Σ w_i (y_i - Σ_k c_k t^k)^2. The smoothed value is c_0.
	p := l.Degree + 1
	ata := mat.New(p, p)
	atb := make([]float64, p)
	basis := make([]float64, p)
	for i := lo; i < hi; i++ {
		t := xs[i] - x
		w := tricube(math.Abs(t) / maxDist)
		if w == 0 {
			continue
		}
		basis[0] = 1
		for k := 1; k < p; k++ {
			basis[k] = basis[k-1] * t
		}
		for r := 0; r < p; r++ {
			atb[r] += w * basis[r] * ys[i]
			for c := 0; c < p; c++ {
				ata.Add(r, c, w*basis[r]*basis[c])
			}
		}
	}
	coef, err := mat.SolveVec(ata, atb)
	if err != nil {
		// Degenerate window (e.g. duplicate weights concentrated at edges):
		// fall back to the weighted mean, which is always defined.
		var sw, swy float64
		for i := lo; i < hi; i++ {
			w := tricube(math.Abs(xs[i]-x) / maxDist)
			sw += w
			swy += w * ys[i]
		}
		if sw == 0 {
			return ys[(lo+hi)/2], nil
		}
		return swy / sw, nil
	}
	return coef[0], nil
}

// nearestWindow returns [lo, hi) bounds of the `window` samples nearest to x.
func nearestWindow(xs []float64, x float64, window int) (int, int) {
	n := len(xs)
	if window >= n {
		return 0, n
	}
	// Start at the insertion point and expand toward the nearer side.
	pos := sort.SearchFloat64s(xs, x)
	lo, hi := pos, pos
	for hi-lo < window {
		switch {
		case lo == 0:
			hi++
		case hi == n:
			lo--
		case x-xs[lo-1] <= xs[hi]-x:
			lo--
		default:
			hi++
		}
	}
	return lo, hi
}

// tricube is the standard LOESS kernel (1 - u^3)^3 for u in [0, 1].
func tricube(u float64) float64 {
	if u >= 1 {
		return 0
	}
	c := 1 - u*u*u
	return c * c * c
}

// MovingAverage smooths ys with a centred window of the given half-width
// (window = 2*halfWidth + 1), shrinking the window at the edges.
func MovingAverage(ys []float64, halfWidth int) []float64 {
	if halfWidth <= 0 {
		return append([]float64(nil), ys...)
	}
	out := make([]float64, len(ys))
	for i := range ys {
		lo := i - halfWidth
		if lo < 0 {
			lo = 0
		}
		hi := i + halfWidth + 1
		if hi > len(ys) {
			hi = len(ys)
		}
		var s float64
		for j := lo; j < hi; j++ {
			s += ys[j]
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// Exponential applies a first-order IIR low-pass y'_i = α y_i + (1-α) y'_{i-1}.
// α must be in (0, 1]; α = 1 returns the input unchanged.
func Exponential(ys []float64, alpha float64) ([]float64, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("smoothing: alpha %v out of range (0,1]", alpha)
	}
	out := make([]float64, len(ys))
	if len(ys) == 0 {
		return out, nil
	}
	out[0] = ys[0]
	for i := 1; i < len(ys); i++ {
		out[i] = alpha*ys[i] + (1-alpha)*out[i-1]
	}
	return out, nil
}
