package smoothing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func TestNewLoessValidation(t *testing.T) {
	tests := []struct {
		name   string
		span   float64
		degree int
		ok     bool
	}{
		{"valid-1", 0.3, 1, true},
		{"valid-2", 1.0, 2, true},
		{"zero-span", 0, 1, false},
		{"big-span", 1.5, 1, false},
		{"degree-0", 0.5, 0, false},
		{"degree-3", 0.5, 3, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewLoess(tt.span, tt.degree)
			if (err == nil) != tt.ok {
				t.Errorf("NewLoess(%v,%d) err = %v, ok=%v", tt.span, tt.degree, err, tt.ok)
			}
		})
	}
}

// LOESS with a degree-d local polynomial must reproduce any global polynomial
// of degree <= d exactly (up to numerical error), regardless of span.
func TestLoessReproducesPolynomials(t *testing.T) {
	xs := linspace(0, 10, 101)
	tests := []struct {
		name   string
		degree int
		f      func(x float64) float64
	}{
		{"line-deg1", 1, func(x float64) float64 { return 2*x - 3 }},
		{"line-deg2", 2, func(x float64) float64 { return -x + 7 }},
		{"quad-deg2", 2, func(x float64) float64 { return 0.5*x*x - x + 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ys := make([]float64, len(xs))
			for i, x := range xs {
				ys[i] = tt.f(x)
			}
			l, err := NewLoess(0.3, tt.degree)
			if err != nil {
				t.Fatal(err)
			}
			sm, err := l.Smooth(xs, ys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sm {
				if math.Abs(sm[i]-ys[i]) > 1e-8 {
					t.Fatalf("at x=%v: smoothed %v, want %v", xs[i], sm[i], ys[i])
				}
			}
		})
	}
}

func TestLoessReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := linspace(0, 2*math.Pi, 200)
	clean := make([]float64, len(xs))
	noisy := make([]float64, len(xs))
	for i, x := range xs {
		clean[i] = math.Sin(x)
		noisy[i] = clean[i] + rng.NormFloat64()*0.2
	}
	l, _ := NewLoess(0.15, 2)
	sm, err := l.Smooth(xs, noisy)
	if err != nil {
		t.Fatal(err)
	}
	var rawErr, smErr float64
	for i := range xs {
		rawErr += math.Abs(noisy[i] - clean[i])
		smErr += math.Abs(sm[i] - clean[i])
	}
	if smErr >= rawErr*0.5 {
		t.Errorf("smoothing did not reduce noise enough: raw %v vs smoothed %v", rawErr, smErr)
	}
}

func TestLoessErrors(t *testing.T) {
	l, _ := NewLoess(0.5, 2)
	if _, err := l.Smooth([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := l.Smooth(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := l.Smooth([]float64{1, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("non-increasing xs should error")
	}
	// Window smaller than degree+1.
	tiny, _ := NewLoess(0.1, 2)
	if _, err := tiny.Smooth([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrBadSpan) {
		t.Errorf("want ErrBadSpan, got %v", err)
	}
}

func TestLoessAt(t *testing.T) {
	xs := linspace(0, 10, 50)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x
	}
	l, _ := NewLoess(0.4, 1)
	v, err := l.At(xs, ys, 5.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-16.5) > 1e-8 {
		t.Errorf("At(5.5) = %v, want 16.5", v)
	}
	if _, err := l.At(nil, nil, 0); err == nil {
		t.Error("At with empty set should error")
	}
}

func TestNearestWindow(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	tests := []struct {
		x      float64
		window int
		lo, hi int
	}{
		{0, 3, 0, 3},
		{5, 3, 3, 6},
		{2.4, 3, 1, 4},
		{2.6, 3, 2, 5},
		{9, 2, 4, 6},
		{-2, 2, 0, 2},
		{3, 10, 0, 6},
	}
	for _, tt := range tests {
		lo, hi := nearestWindow(xs, tt.x, tt.window)
		if lo != tt.lo || hi != tt.hi {
			t.Errorf("nearestWindow(%v, %d) = [%d,%d), want [%d,%d)", tt.x, tt.window, lo, hi, tt.lo, tt.hi)
		}
	}
}

func TestTricube(t *testing.T) {
	if tricube(0) != 1 {
		t.Error("tricube(0) != 1")
	}
	if tricube(1) != 0 || tricube(2) != 0 {
		t.Error("tricube >= 1 should be 0")
	}
	if tricube(0.5) <= 0 || tricube(0.5) >= 1 {
		t.Error("tricube(0.5) out of (0,1)")
	}
}

func TestMovingAverage(t *testing.T) {
	ys := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(ys, 1)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	same := MovingAverage(ys, 0)
	for i := range ys {
		if same[i] != ys[i] {
			t.Error("halfWidth 0 should be identity")
		}
	}
	same[0] = 99
	if ys[0] != 1 {
		t.Error("MovingAverage with halfWidth 0 aliases input")
	}
}

func TestExponential(t *testing.T) {
	got, err := Exponential([]float64{1, 2, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2.25}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Exponential[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Exponential([]float64{1}, 0); err == nil {
		t.Error("alpha 0 should error")
	}
	if _, err := Exponential([]float64{1}, 1.1); err == nil {
		t.Error("alpha > 1 should error")
	}
	if out, err := Exponential(nil, 0.5); err != nil || len(out) != 0 {
		t.Errorf("Exponential(nil) = %v, %v", out, err)
	}
}

// Property: smoothed output is bounded by the input envelope for degree 1
// (a weighted-average-like property; degree-1 local fits can overshoot only
// slightly at the edges, so allow a small margin).
func TestLoessBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(60)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + r.Float64()*0.5
			ys[i] = r.NormFloat64()
		}
		l, err := NewLoess(0.5, 1)
		if err != nil {
			return false
		}
		sm, err := l.Smooth(xs, ys)
		if err != nil {
			return false
		}
		var lo, hi float64 = ys[0], ys[0]
		for _, y := range ys {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		margin := (hi - lo) * 0.5
		for _, y := range sm {
			if y < lo-margin || y > hi+margin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLoessSmooth(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	xs := linspace(0, 100, 500)
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = math.Sin(xs[i]/5) + rng.NormFloat64()*0.1
	}
	l, _ := NewLoess(0.1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Smooth(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
