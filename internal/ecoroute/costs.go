package ecoroute

import (
	"sync"
	"sync/atomic"
	"time"

	"roadgrade/internal/fuel"
	"roadgrade/internal/obs"
	"roadgrade/internal/road"
)

// Cost-table instrumentation. Reused counts edges whose generation stamp was
// unchanged on a refresh scan (cache hit — no re-integration); recomputed
// counts edges whose grades changed (cache miss). Warm queries that skip the
// scan entirely are the snapshot hits.
var (
	obsCostReused   = obs.Default.Counter("ecoroute_cost_cache_hits_total")
	obsCostRecomp   = obs.Default.Counter("ecoroute_cost_cache_misses_total")
	obsSnapshotHits = obs.Default.Counter("ecoroute_snapshot_hits_total")
	obsRefreshes    = obs.Default.Counter("ecoroute_refreshes_total")
	obsRefreshSecs  = obs.Default.Histogram("ecoroute_refresh_seconds", obs.LatencyBuckets)
	obsLandmarkRuns = obs.Default.Counter("ecoroute_landmark_builds_total")

	obsRouteSecs = map[Objective]*obs.Histogram{
		Distance: obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "distance")),
		Time:     obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "time")),
		Fuel:     obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "fuel")),
		CO2:      obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "co2")),
		NOx:      obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "nox")),
		CO:       obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "co")),
		HC:       obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "hc")),
		PM:       obs.Default.Histogram("ecoroute_route_seconds", obs.LatencyBuckets, obs.L("objective", "pm")),
	}
)

// observeRoute times one query into the per-objective latency histogram.
func observeRoute(obj Objective) func() {
	h, ok := obsRouteSecs[obj]
	if !ok {
		return func() {}
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// tables is one immutable cost-table snapshot. Queries read it lock-free;
// refreshes derive the next snapshot from the previous one (copying rows and
// updating only stale edges) and swap the pointer.
type tables struct {
	// gen is the source generation the snapshot reflects.
	gen uint64
	// version bumps whenever any edge cost actually changed; fuel-metric
	// landmark tables are keyed to it so an unchanged refresh invalidates
	// nothing.
	version uint64
	// edgeGen[e] is the grade-data stamp edge e's costs were built from.
	edgeGen []uint64
	// fuel[b][e] is edge e's gallons at bucket b's class-adjusted speed.
	fuel [][]float64
	// gradeAt[e] is the grade closure edge e's costs were integrated on,
	// captured at rebuild time. Pollutant rows are built lazily AFTER the
	// snapshot is published; reading grades from the source then could see
	// newer data than edgeGen stamps — these closures pin the snapshot's
	// view (profile snapshots are immutable).
	gradeAt []func(float64) float64

	co2Once []sync.Once
	co2     [][]float64

	// Pollutant cost rows (emis[b][sp][e], grams) are built lazily per
	// bucket — one integration pass fills all four species — so fuel-only
	// users never pay for them. emisPrev/emisPrevGen carry the previous
	// snapshot's built rows: an edge whose stamp is unchanged copies its
	// four values instead of re-integrating (bit-identical — the
	// integration is deterministic in the grade data the stamp names).
	emisOnce    []sync.Once
	emisBuilt   []atomic.Bool
	emis        [][][]float64
	emisPrev    [][][]float64
	emisPrevGen []uint64
}

// co2Row lazily scales the fuel row into grams; built at most once per
// snapshot and bucket.
func (tb *tables) co2Row(bucket int) []float64 {
	tb.co2Once[bucket].Do(func() {
		row := make([]float64, len(tb.fuel[bucket]))
		for i, g := range tb.fuel[bucket] {
			row[i] = g * fuel.CO2GramsPerGallon
		}
		tb.co2[bucket] = row
	})
	return tb.co2[bucket]
}

// atomicTables is the published-snapshot slot.
type atomicTables struct{ p atomic.Pointer[tables] }

// fresh returns a snapshot that reflects the source's current generation,
// refreshing stale edges first if needed. The warm path is one atomic load
// plus one counter comparison.
func (e *Engine) fresh() (*tables, error) {
	gen := e.src.Generation()
	if tb := e.cur.p.Load(); tb != nil && tb.gen == gen {
		obsSnapshotHits.Inc()
		return tb, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Re-check under the lock: another query may have refreshed already.
	// Re-read the generation so a submission that landed while we waited is
	// folded into this refresh rather than triggering another.
	gen = e.src.Generation()
	if tb := e.cur.p.Load(); tb != nil && tb.gen == gen {
		return tb, nil
	}
	start := time.Now()
	next := e.rebuild(e.cur.p.Load(), gen)
	e.cur.p.Store(next)
	obsRefreshes.Inc()
	obsRefreshSecs.Observe(time.Since(start).Seconds())
	return next, nil
}

// rebuild derives the next snapshot from prev, re-integrating only edges
// whose grade-data stamp changed. O(edges) stamp compares, O(changed ×
// buckets × length/step) integration.
func (e *Engine) rebuild(prev *tables, gen uint64) *tables {
	nEdges := len(e.edges)
	nBuckets := len(e.cfg.SpeedsKmh)
	next := &tables{
		gen:       gen,
		edgeGen:   make([]uint64, nEdges),
		fuel:      make([][]float64, nBuckets),
		gradeAt:   make([]func(float64) float64, nEdges),
		co2Once:   make([]sync.Once, nBuckets),
		co2:       make([][]float64, nBuckets),
		emisOnce:  make([]sync.Once, nBuckets),
		emisBuilt: make([]atomic.Bool, nBuckets),
		emis:      make([][][]float64, nBuckets),
		emisPrev:  make([][][]float64, nBuckets),
	}
	for b := 0; b < nBuckets; b++ {
		next.fuel[b] = make([]float64, nEdges)
		if prev != nil {
			copy(next.fuel[b], prev.fuel[b])
		}
	}
	if prev != nil {
		copy(next.edgeGen, prev.edgeGen)
		next.version = prev.version
		// Carry the previous snapshot's materialized pollutant rows so the
		// lazy build only re-integrates stamped edges. The carry is one
		// level deep: prev's rows are keyed by prev.edgeGen, so only rows
		// prev actually built (not rows it merely carried) are usable. A
		// bucket mid-build right now reads as not-built — correct, merely
		// a full integration pass later.
		next.emisPrevGen = prev.edgeGen
		for b := 0; b < nBuckets; b++ {
			if prev.emisBuilt[b].Load() {
				next.emisPrev[b] = prev.emis[b]
			}
		}
	}
	changed := 0
	for i, ed := range e.edges {
		eg := e.src.Edge(ed.Road, e.siblingRoad(i))
		next.gradeAt[i] = eg.At
		if prev != nil && eg.Gen == next.edgeGen[i] {
			obsCostReused.Inc()
			continue
		}
		obsCostRecomp.Inc()
		next.edgeGen[i] = eg.Gen
		for b := 0; b < nBuckets; b++ {
			v := e.cfg.SpeedsKmh[b] / 3.6 * e.cfg.classFactor(ed.Road.Class())
			next.fuel[b][i] = edgeFuelGallons(e.cfg.Params, eg.At, e.lengthM[i], v, e.cfg.SampleStepM)
		}
		changed++
	}
	if changed > 0 {
		next.version++
	}
	return next
}

// siblingRoad returns the opposite-direction road of edge i, or nil.
func (e *Engine) siblingRoad(i int) *road.Road {
	if s := e.sibling[i]; s >= 0 {
		return e.edges[s].Road
	}
	return nil
}

// edgeFuelGallons integrates the Eq. (7) rate along one edge at a constant
// cruise speed: grade is sampled at the midpoint of each stepM cell and the
// per-cell gallons accumulate exactly like fuel.TripFuel's per-sample terms
// (rate × dt / 3600), so a cost equals TripFuel over the same samples
// bit-for-bit.
func edgeFuelGallons(p fuel.VSPParams, grade func(float64) float64, lengthM, speedMS, stepM float64) float64 {
	if lengthM <= 0 || speedMS <= 0 || stepM <= 0 {
		return 0
	}
	var gallons float64
	for s := 0.0; s < lengthM; s += stepM {
		ds := stepM
		if s+ds > lengthM {
			ds = lengthM - s
		}
		if ds <= 0 {
			break
		}
		dt := ds / speedMS
		gallons += p.RateGPH(speedMS, 0, grade(s+ds/2)) * dt / 3600
	}
	return gallons
}
