package ecoroute

import (
	"fmt"
	"math"
	"testing"

	"roadgrade/internal/fusion"
	"roadgrade/internal/road"
)

// fakeStore is an in-memory CloudStore for invalidation tests.
type fakeStore struct {
	gen      uint64
	profiles map[string]*fusion.Profile
	roadGen  map[string]uint64
}

func newFakeStore() *fakeStore {
	return &fakeStore{profiles: map[string]*fusion.Profile{}, roadGen: map[string]uint64{}}
}

func (f *fakeStore) StoreGeneration() uint64 { return f.gen }

func (f *fakeStore) FusedGeneration(roadID string) (*fusion.Profile, uint64, error) {
	p, ok := f.profiles[roadID]
	if !ok {
		return nil, 0, fmt.Errorf("no submissions for %s", roadID)
	}
	return p, f.roadGen[roadID], nil
}

// submit installs a constant-grade fused profile for one road and bumps both
// the road and store generations, as cloud.Server.Submit does.
func (f *fakeStore) submit(t *testing.T, r *road.Road, gradeRad float64) {
	t.Helper()
	n := int(math.Ceil(r.Length()/5)) + 1
	s := make([]float64, n)
	g := make([]float64, n)
	vr := make([]float64, n)
	for i := range s {
		s[i] = 5 * float64(i)
		g[i] = gradeRad
		vr[i] = 1e-4
	}
	f.profiles[r.ID()] = &fusion.Profile{SpacingM: 5, S: s, GradeRad: g, Var: vr}
	f.roadGen[r.ID()]++
	f.gen++
}

// TestCloudSourceInvalidation drives the generation-keyed cost cache: the
// initial build costs every edge; a submission for one road recosts only that
// street's edges (forward profile + the sibling's sign-flipped fallback); an
// unrelated submission leaves the street alone; and with no new submissions
// the warm path reuses the snapshot without any scan.
func TestCloudSourceInvalidation(t *testing.T) {
	net, err := road.GenerateNetwork(53, road.NetworkConfig{TargetStreetKM: 3})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	store := newFakeStore()
	eng, err := NewEngine(net, CloudSource{Store: store}, Config{SpeedsKmh: []float64{40}})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}

	counters := func() (reused, recomputed, snapshots uint64) {
		return obsCostReused.Value(), obsCostRecomp.Value(), obsSnapshotHits.Value()
	}

	_, recomp0, _ := counters()
	tb, err := eng.fresh()
	if err != nil {
		t.Fatalf("initial build: %v", err)
	}
	_, recomp1, _ := counters()
	if got := recomp1 - recomp0; got != uint64(len(net.Edges)) {
		t.Fatalf("initial build recomputed %d edges, want all %d", got, len(net.Edges))
	}
	// No data anywhere: every edge is flat, every stamp 0.
	for i, g := range tb.edgeGen {
		if g != 0 {
			t.Fatalf("edge %d stamp %d before any submission, want 0", i, g)
		}
	}

	// Warm path: same generation → snapshot reuse, no edge scan.
	reused1, recomp1, snap1 := counters()
	tb2, err := eng.fresh()
	if err != nil {
		t.Fatalf("warm fresh: %v", err)
	}
	reused2, recomp2, snap2 := counters()
	if tb2 != tb {
		t.Fatal("warm path built a new snapshot for an unchanged generation")
	}
	if snap2 == snap1 || reused2 != reused1 || recomp2 != recomp1 {
		t.Fatalf("warm path scanned edges: reused %d→%d recomputed %d→%d snapshots %d→%d",
			reused1, reused2, recomp1, recomp2, snap1, snap2)
	}

	// Submit one road: only that street recosts (its edge from the fused
	// profile, the opposite direction via the sign-flipped fallback).
	target := net.Edges[0]
	uphill := 3.0 * math.Pi / 180
	store.submit(t, target.Road, uphill)
	reusedBefore, recompBefore, _ := counters()
	tb3, err := eng.fresh()
	if err != nil {
		t.Fatalf("refresh after submit: %v", err)
	}
	reusedAfter, recompAfter, _ := counters()
	if tb3 == tb {
		t.Fatal("submission did not produce a new snapshot")
	}
	if got := recompAfter - recompBefore; got != 2 {
		t.Errorf("refresh recomputed %d edges, want 2 (street and sibling)", got)
	}
	if got := reusedAfter - reusedBefore; got != uint64(len(net.Edges))-2 {
		t.Errorf("refresh reused %d edges, want %d", got, len(net.Edges)-2)
	}

	// The costed direction climbs, its sibling descends: fuel must split
	// around the old flat cost.
	var fwdIdx, revIdx = -1, -1
	for i, ed := range eng.edges {
		if ed == target {
			fwdIdx = i
			revIdx = int(eng.sibling[i])
		}
	}
	if fwdIdx < 0 || revIdx < 0 {
		t.Fatal("target edge or sibling not found in engine index")
	}
	flat := tb.fuel[0][fwdIdx]
	if up := tb3.fuel[0][fwdIdx]; up <= flat {
		t.Errorf("uphill fused cost %.9f not above flat %.9f", up, flat)
	}
	if down := tb3.fuel[0][revIdx]; down >= tb.fuel[0][revIdx] {
		t.Errorf("sign-flipped sibling cost %.9f not below flat %.9f", down, tb.fuel[0][revIdx])
	}
	if s := tb3.edgeGen[fwdIdx]; s != 3*store.roadGen[target.Road.ID()]+1 {
		t.Errorf("forward stamp %d, want 3·gen+1", s)
	}
	if s := tb3.edgeGen[revIdx]; s != 3*store.roadGen[target.Road.ID()]+2 {
		t.Errorf("reverse fallback stamp %d, want 3·gen+2", s)
	}

	// Submit a different road: the first street's stamps are unchanged, so
	// its costs carry over untouched (bit-identical slices entries).
	other := eng.siblingRoad(fwdIdx)
	store.submit(t, other, -uphill)
	tb4, err := eng.fresh()
	if err != nil {
		t.Fatalf("refresh after second submit: %v", err)
	}
	if tb4.fuel[0][fwdIdx] != tb3.fuel[0][fwdIdx] {
		t.Error("unrelated submission changed an untouched edge's cost")
	}
	// The sibling switched provenance (fallback → own profile): must recost.
	if tb4.edgeGen[revIdx] != 3*store.roadGen[other.ID()]+1 {
		t.Errorf("sibling stamp %d after own submission, want 3·gen+1", tb4.edgeGen[revIdx])
	}
}

// TestFlatSourceBaseline: a flat source prices both directions identically.
func TestFlatSourceBaseline(t *testing.T) {
	net := twoNodeNet(t, constGrades(20, 2*math.Pi/180))
	eng, err := NewEngine(net, FlatSource{}, Config{SpeedsKmh: []float64{40}, ClassSpeedFactor: uniformSpeeds})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	up, err := eng.Route(Fuel, 40, 1, 2)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	down, err := eng.Route(Fuel, 40, 2, 1)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if up.FuelGal != down.FuelGal {
		t.Errorf("flat source priced directions differently: %.9f vs %.9f", up.FuelGal, down.FuelGal)
	}
}
