package ecoroute

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/fuel"
	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

// uniformSpeeds removes the class factor so tests can reason about one speed.
var uniformSpeeds = map[road.Class]float64{
	road.ClassArterial:  1,
	road.ClassCollector: 1,
	road.ClassLocal:     1,
}

// slopedRoad builds a straight road of len(grades)*5 m with one grade value
// (radians) per 5 m cell, running from 'from' toward 'to'.
func slopedRoad(t *testing.T, id string, from, to geo.ENU, grades []float64) *road.Road {
	t.Helper()
	line, err := geo.NewPolyline([]geo.ENU{from, to})
	if err != nil {
		t.Fatalf("polyline: %v", err)
	}
	prof, err := road.NewProfileFromGrades(5, grades, 100)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	r, err := road.NewRoad(id, line, prof, nil, road.ClassCollector)
	if err != nil {
		t.Fatalf("road %s: %v", id, err)
	}
	return r
}

// reversed flips a grade series for the opposite travel direction.
func reversed(grades []float64) []float64 {
	out := make([]float64, len(grades))
	for i, g := range grades {
		out[len(grades)-1-i] = -g
	}
	return out
}

// twoNodeNet is a single street between nodes 1 and 2, both directions.
func twoNodeNet(t *testing.T, grades []float64) *road.Network {
	t.Helper()
	lengthM := 5 * float64(len(grades))
	a, b := geo.ENU{E: 0, N: 0}, geo.ENU{E: lengthM, N: 0}
	fwd := slopedRoad(t, "st-0-0", a, b, grades)
	rev := slopedRoad(t, "st-0-1", b, a, reversed(grades))
	net, err := road.NewNetwork(
		[]road.Node{{ID: 1, Pos: a}, {ID: 2, Pos: b}},
		[]*road.Edge{{From: 1, To: 2, Road: fwd}, {From: 2, To: 1, Road: rev}},
	)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	return net
}

func constGrades(n int, g float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g
	}
	return out
}

// TestUphillCostsMoreThanDownhill: grade sign flips with travel direction, so
// the same street must cost more gallons climbed than descended, and each
// direction's cost must match fuel.TripFuel over the identical samples to
// 1e-12 (satellite 4).
func TestUphillCostsMoreThanDownhill(t *testing.T) {
	grade := 4.0 * math.Pi / 180 // 4° climb
	net := twoNodeNet(t, constGrades(20, grade))

	eng, err := NewEngine(net, TruthSource{}, Config{
		SpeedsKmh:        []float64{40},
		ClassSpeedFactor: uniformSpeeds,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	up, err := eng.Route(Fuel, 40, 1, 2)
	if err != nil {
		t.Fatalf("uphill route: %v", err)
	}
	down, err := eng.Route(Fuel, 40, 2, 1)
	if err != nil {
		t.Fatalf("downhill route: %v", err)
	}
	if up.FuelGal <= down.FuelGal {
		t.Fatalf("uphill fuel %.9f gal not greater than downhill %.9f gal", up.FuelGal, down.FuelGal)
	}
	if up.LengthM != down.LengthM {
		t.Fatalf("directions disagree on length: %v vs %v", up.LengthM, down.LengthM)
	}

	// Reproduce each direction with TripFuel on the same midpoint samples.
	p := fuel.TableII()
	speedMS := 40.0 / 3.6
	for _, tc := range []struct {
		name string
		plan Plan
		road *road.Road
	}{
		{"uphill", up, net.Edges[0].Road},
		{"downhill", down, net.Edges[1].Road},
	} {
		n := int(tc.road.Length() / 5)
		v := make([]float64, n)
		a := make([]float64, n)
		g := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = speedMS
			g[i] = tc.road.GradeAt(5*float64(i) + 2.5)
		}
		want, err := fuel.TripFuel(p, 5/speedMS, v, a, g)
		if err != nil {
			t.Fatalf("TripFuel: %v", err)
		}
		if diff := math.Abs(tc.plan.FuelGal - want); diff > 1e-12 {
			t.Errorf("%s: engine fuel %.15f gal, TripFuel %.15f gal, diff %.3e > 1e-12",
				tc.name, tc.plan.FuelGal, want, diff)
		}
		if tc.plan.CO2G != tc.plan.FuelGal*fuel.CO2GramsPerGallon {
			t.Errorf("%s: CO2 %.6f g not fuel × factor", tc.name, tc.plan.CO2G)
		}
	}
}

// TestObjectivesDisagree: on a diamond graph where the direct street is steep
// and slow but a detour is flat and fast, the three metrics must pick the
// routes they advertise.
func TestObjectivesDisagree(t *testing.T) {
	// Nodes: 1 --steep local street (400 m, 8° climb)--> 4
	//        1 --flat arterial detour via 2,3 (600 m total)--> 4
	mk := func(id string, from, to geo.ENU, grades []float64, cls road.Class) *road.Road {
		line, err := geo.NewPolyline([]geo.ENU{from, to})
		if err != nil {
			t.Fatalf("polyline: %v", err)
		}
		prof, err := road.NewProfileFromGrades(5, grades, 100)
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		r, err := road.NewRoad(id, line, prof, nil, cls)
		if err != nil {
			t.Fatalf("road %s: %v", id, err)
		}
		return r
	}
	// Direct 600 m at local speed (×0.85): 63.5 s. Detour 800 m at arterial
	// speed (×1.25): 57.6 s. Shortest by meters = direct, fastest = detour,
	// and the 8° climb makes the flat detour the fuel winner too.
	n1 := geo.ENU{E: 0, N: 0}
	n2 := geo.ENU{E: 0, N: 100}
	n3 := geo.ENU{E: 600, N: 100}
	n4 := geo.ENU{E: 600, N: 0}
	steep := 8.0 * math.Pi / 180
	direct := mk("direct", n1, n4, constGrades(120, steep), road.ClassLocal)
	leg12 := mk("leg12", n1, n2, constGrades(20, 0), road.ClassArterial)
	leg23 := mk("leg23", n2, n3, constGrades(120, 0), road.ClassArterial)
	leg34 := mk("leg34", n3, n4, constGrades(20, 0), road.ClassArterial)
	net, err := road.NewNetwork(
		[]road.Node{{ID: 1, Pos: n1}, {ID: 2, Pos: n2}, {ID: 3, Pos: n3}, {ID: 4, Pos: n4}},
		[]*road.Edge{
			{From: 1, To: 4, Road: direct},
			{From: 1, To: 2, Road: leg12},
			{From: 2, To: 3, Road: leg23},
			{From: 3, To: 4, Road: leg34},
		},
	)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{SpeedsKmh: []float64{40}})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}

	dist, err := eng.Route(Distance, 40, 1, 4)
	if err != nil {
		t.Fatalf("distance: %v", err)
	}
	if len(dist.RoadIDs) != 1 || dist.RoadIDs[0] != "direct" {
		t.Errorf("shortest route took %v, want the direct street", dist.RoadIDs)
	}
	fast, err := eng.Route(Time, 40, 1, 4)
	if err != nil {
		t.Fatalf("time: %v", err)
	}
	if len(fast.RoadIDs) != 3 {
		t.Errorf("fastest route took %v, want the arterial detour", fast.RoadIDs)
	}
	eco, err := eng.Route(Fuel, 40, 1, 4)
	if err != nil {
		t.Fatalf("fuel: %v", err)
	}
	if len(eco.RoadIDs) != 3 {
		t.Errorf("eco route took %v, want the flat detour", eco.RoadIDs)
	}
	co2, err := eng.Route(CO2, 40, 1, 4)
	if err != nil {
		t.Fatalf("co2: %v", err)
	}
	if co2.Cost != eco.Cost*fuel.CO2GramsPerGallon {
		t.Errorf("CO2 cost %.6f g, want fuel cost × factor = %.6f", co2.Cost, eco.Cost*fuel.CO2GramsPerGallon)
	}
	if len(co2.RoadIDs) != len(eco.RoadIDs) {
		t.Errorf("CO2 route %v differs from fuel route %v", co2.RoadIDs, eco.RoadIDs)
	}
}

// TestMinFuelNeverWorseThanShortest is the acceptance property: over ≥50
// random O/D pairs, the min-fuel route never burns more than the shortest-
// distance route.
func TestMinFuelNeverWorseThanShortest(t *testing.T) {
	net, err := road.GenerateNetwork(41, road.NetworkConfig{TargetStreetKM: 12})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	pairs := 0
	for pairs < 60 {
		from := net.Nodes[rng.Intn(len(net.Nodes))].ID
		to := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		eco, err := eng.Route(Fuel, 40, from, to)
		if errors.Is(err, ErrNoPath) {
			continue
		}
		if err != nil {
			t.Fatalf("fuel route %d→%d: %v", from, to, err)
		}
		short, err := eng.Route(Distance, 40, from, to)
		if err != nil {
			t.Fatalf("distance route %d→%d: %v", from, to, err)
		}
		if eco.FuelGal > short.FuelGal*(1+1e-12) {
			t.Errorf("pair %d→%d: min-fuel route burns %.9f gal > shortest route's %.9f gal",
				from, to, eco.FuelGal, short.FuelGal)
		}
		if eco.LengthM < short.LengthM*(1-1e-12) {
			t.Errorf("pair %d→%d: shortest route longer (%.3f m) than eco route (%.3f m)",
				from, to, short.LengthM, eco.LengthM)
		}
		pairs++
	}
}

// TestBidirectionalMatchesDijkstra: the optimized search must return
// bit-identical costs to the plain Dijkstra reference, for every objective.
func TestBidirectionalMatchesDijkstra(t *testing.T) {
	net, err := road.GenerateNetwork(43, road.NetworkConfig{TargetStreetKM: 12})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for checked < 40 {
		from := net.Nodes[rng.Intn(len(net.Nodes))].ID
		to := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		for _, obj := range Objectives() {
			fast, errF := eng.Route(obj, 40, from, to)
			ref, errR := eng.RouteDijkstra(obj, 40, from, to)
			if (errF == nil) != (errR == nil) {
				t.Fatalf("%s %d→%d: search disagreement: fast err %v, reference err %v", obj, from, to, errF, errR)
			}
			if errF != nil {
				if !errors.Is(errF, ErrNoPath) {
					t.Fatalf("%s %d→%d: %v", obj, from, to, errF)
				}
				continue
			}
			if fast.Cost != ref.Cost {
				t.Errorf("%s %d→%d: bidirectional cost %.17g != Dijkstra cost %.17g",
					obj, from, to, fast.Cost, ref.Cost)
			}
		}
		checked++
	}
}

// TestMatrixMatchesPointQueries: the batched many-to-many grid must agree
// with individual point-to-point answers, including unreachable = +Inf and
// diagonal zeros.
func TestMatrixMatchesPointQueries(t *testing.T) {
	net, err := road.GenerateNetwork(47, road.NetworkConfig{TargetStreetKM: 8})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	var nodes []int
	seen := map[int]bool{}
	for len(nodes) < 8 {
		id := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	for _, obj := range []Objective{Distance, Fuel, CO2} {
		grid, err := eng.Matrix(obj, 40, nodes, nodes)
		if err != nil {
			t.Fatalf("matrix %s: %v", obj, err)
		}
		for i, from := range nodes {
			for j, to := range nodes {
				if from == to {
					if grid[i][j] != 0 {
						t.Errorf("%s: diagonal [%d][%d] = %v, want 0", obj, i, j, grid[i][j])
					}
					continue
				}
				plan, err := eng.RouteDijkstra(obj, 40, from, to)
				if errors.Is(err, ErrNoPath) {
					if !math.IsInf(grid[i][j], 1) {
						t.Errorf("%s %d→%d: matrix %v, want +Inf for no path", obj, from, to, grid[i][j])
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s %d→%d: %v", obj, from, to, err)
				}
				if diff := math.Abs(grid[i][j] - plan.Cost); diff > 1e-9*math.Max(1, plan.Cost) {
					t.Errorf("%s %d→%d: matrix cost %.12g, route cost %.12g", obj, from, to, grid[i][j], plan.Cost)
				}
			}
		}
	}
	if _, err := eng.Matrix(Fuel, 40, nil, nodes); err == nil {
		t.Error("empty source set: want error")
	}
	if _, err := eng.Matrix(Fuel, 40, []int{-99}, nodes); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown matrix source: got %v, want ErrUnknownNode", err)
	}
}

func TestParseObjective(t *testing.T) {
	cases := map[string]Objective{
		"distance": Distance, "shortest": Distance,
		"time": Time, "fastest": Time,
		"fuel": Fuel, "eco": Fuel, "FUEL": Fuel,
		"co2": CO2, "emission": CO2,
	}
	for in, want := range cases {
		got, err := ParseObjective(in)
		if err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseObjective("scenic"); err == nil {
		t.Error("ParseObjective(scenic): want error")
	}
}

func TestRouteErrors(t *testing.T) {
	net := twoNodeNet(t, constGrades(10, 0))
	eng, err := NewEngine(net, TruthSource{}, Config{SpeedsKmh: []float64{40}})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng.Route(Fuel, 40, 99, 1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown from: got %v, want ErrUnknownNode", err)
	}
	if _, err := eng.Route(Fuel, 40, 1, 99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown to: got %v, want ErrUnknownNode", err)
	}
	if _, err := eng.Route(Fuel, -1, 1, 2); err == nil {
		t.Error("negative speed: want error")
	}
	plan, err := eng.Route(Fuel, 40, 1, 1)
	if err != nil || plan.Cost != 0 || len(plan.RoadIDs) != 0 {
		t.Errorf("self route: got %+v, %v; want empty zero-cost plan", plan, err)
	}
	if _, err := NewEngine(nil, TruthSource{}, Config{}); err == nil {
		t.Error("nil network: want error")
	}
	if _, err := NewEngine(net, nil, Config{}); err == nil {
		t.Error("nil source: want error")
	}
	if _, err := NewEngine(net, TruthSource{}, Config{SpeedsKmh: []float64{0}}); err == nil {
		t.Error("zero speed bucket: want error")
	}
}
