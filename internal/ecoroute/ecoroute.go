// Package ecoroute is the routing subsystem that closes the loop the paper
// motivates: once road gradients are known (ground truth, or the cloud
// store's crowd-fused estimates), per-edge fuel consumption is predictable
// and routes can be planned to minimize gallons or emissions instead of
// meters or minutes — the question a fleet actually asks of the fused map.
//
// Architecture (DESIGN.md §9):
//
//   - Edge costs come from fuel.VSPParams.RateGPH integrated along each
//     edge's gradient profile at a cruise speed. Grade sign flips with travel
//     direction, so every directed edge gets its own cost, per cruise-speed
//     bucket (class-dependent speed factors make arterials faster than local
//     streets, so fastest and shortest genuinely differ).
//   - Cost tables are precomputed once and cached as immutable snapshots
//     stamped with the grade source's generation counters. A cloud
//     re-fusion bumps only the affected roads' generations, so a refresh
//     recomputes only those edges (cache hits/misses are exported metrics).
//   - Point-to-point queries run bidirectional Dijkstra with an admissible
//     ALT (A*, landmarks, triangle inequality) lower bound, bit-identical in
//     cost to plain Dijkstra; batched many-to-many queries fan one-to-all
//     searches across a bounded worker pool.
package ecoroute

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"roadgrade/internal/emission"
	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
)

// Objective selects what a route minimizes.
type Objective int

const (
	// Distance minimizes travelled meters.
	Distance Objective = iota
	// Time minimizes travel time at class-adjusted cruise speeds.
	Time
	// Fuel minimizes gallons burned over the gradient profiles.
	Fuel
	// CO2 minimizes carbon dioxide emitted. Emissions are proportional to
	// fuel (§III-E: m = F·V), so the argmin path equals Fuel's; the
	// objective exists so costs and reports read in grams.
	CO2
	// NOx minimizes oxides of nitrogen under the operating-mode model
	// (internal/emission). Unlike CO2, pollutant rates are binned step
	// functions of power demand, so min-NOx routes genuinely diverge from
	// min-fuel on hills — steep pitches jump whole emission bins.
	NOx
	// CO minimizes carbon monoxide.
	CO
	// HC minimizes unburned hydrocarbons.
	HC
	// PM minimizes fine particulate matter (PM2.5).
	PM
)

// String returns the objective name.
func (o Objective) String() string {
	switch o {
	case Distance:
		return "distance"
	case Time:
		return "time"
	case Fuel:
		return "fuel"
	case CO2:
		return "co2"
	case NOx:
		return "nox"
	case CO:
		return "co"
	case HC:
		return "hc"
	case PM:
		return "pm"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Objectives lists every routing objective in stable order.
func Objectives() []Objective {
	return []Objective{Distance, Time, Fuel, CO2, NOx, CO, HC, PM}
}

// ParseObjective resolves an objective name (case-insensitive).
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(s) {
	case "distance", "shortest":
		return Distance, nil
	case "time", "fastest":
		return Time, nil
	case "fuel", "eco":
		return Fuel, nil
	case "co2", "emission":
		return CO2, nil
	case "nox":
		return NOx, nil
	case "co":
		return CO, nil
	case "hc":
		return HC, nil
	case "pm", "pm25", "pm2.5":
		return PM, nil
	}
	return 0, fmt.Errorf("ecoroute: unknown objective %q (want distance | time | fuel | co2 | nox | co | hc | pm)", s)
}

// Search algorithms the engine can run point queries with. Both return
// plans whose costs are bit-identical to the plain Dijkstra reference; they
// differ in how much preprocessing they lean on.
const (
	// AlgALT is bidirectional Dijkstra with ALT landmark pruning — no
	// topology preprocessing beyond landmark distance tables, right for
	// city-scale graphs (PR 5).
	AlgALT = "alt"
	// AlgCCH is the customizable contraction hierarchy: the topology is
	// contracted once (metric-independent), per-objective weights are
	// customized over the contracted graph and re-customized incrementally
	// when the grade source's generation ticks, and queries run PQ-free
	// over the elimination tree — the country-scale configuration
	// (DESIGN.md §13).
	AlgCCH = "cch"
)

// ParseAlgorithm resolves a search-algorithm name (case-insensitive).
func ParseAlgorithm(s string) (string, error) {
	switch strings.ToLower(s) {
	case "", AlgALT:
		return AlgALT, nil
	case AlgCCH:
		return AlgCCH, nil
	}
	return "", fmt.Errorf("ecoroute: unknown algorithm %q (want alt | cch)", s)
}

// Config tunes the engine. The zero value selects the defaults.
type Config struct {
	// Algorithm selects the point-query search: AlgALT (default) or
	// AlgCCH. The Dijkstra reference is always available via RouteDijkstra.
	Algorithm string
	// SpeedsKmh are the cruise-speed buckets cost tables are built for;
	// queries snap to the nearest bucket. Default {30, 40, 50, 60}.
	SpeedsKmh []float64
	// SampleStepM is the arc-length step of the per-edge fuel integration
	// (default 5 m, the fusion grid spacing).
	SampleStepM float64
	// Landmarks is the ALT landmark count (default 8, clamped to the node
	// count). Zero uses the default; negative disables ALT pruning.
	Landmarks int
	// Params are the Eq. (7) VSP coefficients (default fuel.TableII()).
	Params fuel.VSPParams
	// Emission configures the operating-mode pollutant model behind the
	// NOx/CO/HC/PM objectives. The zero value selects the light-duty car
	// defaults (emission.ForVehicle(emission.Car)).
	Emission emission.Params
	// ClassSpeedFactor scales the cruise speed per road class — arterials
	// flow faster than local streets, which is what makes the fastest route
	// differ from the shortest. Defaults: arterial 1.25, collector 1.0,
	// local 0.85. Set all classes to 1 for a uniform-speed model.
	ClassSpeedFactor map[road.Class]float64
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgALT
	}
	if len(c.SpeedsKmh) == 0 {
		c.SpeedsKmh = []float64{30, 40, 50, 60}
	}
	if c.SampleStepM <= 0 {
		c.SampleStepM = 5
	}
	if c.Landmarks == 0 {
		c.Landmarks = 8
	}
	if (c.Params == fuel.VSPParams{}) {
		c.Params = fuel.TableII()
	}
	c.Emission = c.Emission.WithDefaults()
	if c.ClassSpeedFactor == nil {
		c.ClassSpeedFactor = map[road.Class]float64{
			road.ClassArterial:  1.25,
			road.ClassCollector: 1.0,
			road.ClassLocal:     0.85,
		}
	}
	return c
}

// classFactor returns the speed factor for a class (1 when unconfigured).
func (c Config) classFactor(cls road.Class) float64 {
	if f, ok := c.ClassSpeedFactor[cls]; ok && f > 0 {
		return f
	}
	return 1
}

// Engine answers routing queries over one network and one grade source.
// Safe for concurrent use: queries run on immutable cost-table snapshots,
// refreshes build a new snapshot and swap it in.
type Engine struct {
	net *road.Network
	src GradeSource
	cfg Config

	// Dense graph: node IDs are mapped to [0, n) once at construction.
	// Adjacency is flat CSR (offsets + one edge-index array per direction)
	// so searches stream through contiguous memory instead of chasing
	// per-node slice headers.
	idx      map[int]int // node ID → dense index
	ids      []int       // dense index → node ID
	outOff   []int32     // CSR offsets: edges leaving dense node v are outArc[outOff[v]:outOff[v+1]]
	outArc   []int32
	inOff    []int32 // CSR offsets of incoming edges
	inArc    []int32
	edges    []*road.Edge
	tail     []int32 // per edge: dense From
	head     []int32 // per edge: dense To
	lengthM  []float64
	sibling  []int32          // opposite-direction edge index, -1 if none
	roadEdge map[string]int32 // road ID → edge index (PlanEmissions lookup)

	// timeS[b][e] is edge e's traversal seconds at bucket b's class-adjusted
	// speed; fixed at construction (grades don't change time in this model).
	timeS [][]float64

	mu  sync.Mutex // serializes refresh and landmark builds
	cur atomicTables

	lmNodes []int32 // landmark node set (picked once, on the distance metric)
	lmMu    sync.Mutex
	lmCache map[lmKey]*landmarkTable

	// Customizable contraction hierarchy (Algorithm == AlgCCH): the
	// metric-independent contraction is built once on first use; customized
	// weight tables are cached per (metric, bucket, cost version) like the
	// ALT landmark tables, but re-fusions re-customize incrementally.
	cchOnce    sync.Once
	cchG       *cch
	cchWMu     sync.Mutex
	cchW       map[lmKey]*cchWeights
	cchRetired []*cchWeights // superseded tables awaiting array recycling
	cchPool    sync.Pool     // *cchScratch
	lastCust   cchCustStats  // most recent customization's stats (tests, metrics)
}

// NewEngine indexes the network and prepares (but does not yet fill) the
// cost tables; the first query triggers the initial build.
func NewEngine(net *road.Network, src GradeSource, cfg Config) (*Engine, error) {
	if net == nil || len(net.Nodes) == 0 {
		return nil, errors.New("ecoroute: empty network")
	}
	if src == nil {
		return nil, errors.New("ecoroute: nil grade source")
	}
	cfg = cfg.withDefaults()
	if _, err := ParseAlgorithm(cfg.Algorithm); err != nil {
		return nil, err
	}
	for _, s := range cfg.SpeedsKmh {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("ecoroute: invalid cruise speed %v km/h", s)
		}
	}

	e := &Engine{
		net:     net,
		src:     src,
		cfg:     cfg,
		idx:     make(map[int]int, len(net.Nodes)),
		ids:     make([]int, len(net.Nodes)),
		lmCache: make(map[lmKey]*landmarkTable),
		cchW:    make(map[lmKey]*cchWeights),
	}
	for i, n := range net.Nodes {
		if _, dup := e.idx[n.ID]; dup {
			return nil, fmt.Errorf("ecoroute: duplicate node id %d", n.ID)
		}
		e.idx[n.ID] = i
		e.ids[i] = n.ID
	}
	nNodes := len(net.Nodes)
	e.edges = make([]*road.Edge, len(net.Edges))
	e.tail = make([]int32, len(net.Edges))
	e.head = make([]int32, len(net.Edges))
	e.lengthM = make([]float64, len(net.Edges))
	e.sibling = make([]int32, len(net.Edges))
	e.roadEdge = make(map[string]int32, len(net.Edges))
	edgeAt := make(map[*road.Edge]int32, len(net.Edges))
	for i, ed := range net.Edges {
		from, ok := e.idx[ed.From]
		if !ok {
			return nil, fmt.Errorf("ecoroute: edge %s from unknown node %d", ed.Road.ID(), ed.From)
		}
		to, ok := e.idx[ed.To]
		if !ok {
			return nil, fmt.Errorf("ecoroute: edge %s to unknown node %d", ed.Road.ID(), ed.To)
		}
		e.edges[i] = ed
		e.tail[i] = int32(from)
		e.head[i] = int32(to)
		e.lengthM[i] = ed.Road.Length()
		e.sibling[i] = -1
		e.roadEdge[ed.Road.ID()] = int32(i)
		edgeAt[ed] = int32(i)
	}
	// Adjacency comes from the network's own forward and reverse indices so
	// the engine sees exactly the graph road.Network serves, flattened into
	// CSR offset + edge-index arrays.
	e.outOff = make([]int32, nNodes+1)
	e.inOff = make([]int32, nNodes+1)
	e.outArc = make([]int32, len(net.Edges))
	e.inArc = make([]int32, len(net.Edges))
	for dense, id := range e.ids {
		e.outOff[dense+1] = e.outOff[dense]
		for _, ed := range net.Outgoing(id) {
			e.outArc[e.outOff[dense+1]] = edgeAt[ed]
			e.outOff[dense+1]++
		}
		e.inOff[dense+1] = e.inOff[dense]
		for _, ed := range net.Incoming(id) {
			e.inArc[e.inOff[dense+1]] = edgeAt[ed]
			e.inOff[dense+1]++
		}
	}
	// Pair each edge with its opposite-direction sibling (same endpoints,
	// reversed) so the cloud source can fall back to a sign-flipped profile
	// when only one direction has been driven.
	for i, ed := range e.edges {
		if e.sibling[i] >= 0 {
			continue
		}
		h := e.head[i]
		for k := e.outOff[h]; k < e.outOff[h+1]; k++ {
			j := e.outArc[k]
			other := e.edges[j]
			if other.From == ed.To && other.To == ed.From {
				e.sibling[i] = j
				e.sibling[j] = int32(i)
				break
			}
		}
	}
	// Travel times are grade-independent: fix them now, one row per bucket.
	e.timeS = make([][]float64, len(cfg.SpeedsKmh))
	for b, kmh := range cfg.SpeedsKmh {
		row := make([]float64, len(e.edges))
		for i, ed := range e.edges {
			v := kmh / 3.6 * cfg.classFactor(ed.Road.Class())
			row[i] = e.lengthM[i] / v
		}
		e.timeS[b] = row
	}
	return e, nil
}

// Network returns the engine's road network.
func (e *Engine) Network() *road.Network { return e.net }

// Algorithm returns the configured point-query search algorithm (AlgALT or
// AlgCCH) — surfaced so servers can label routing metrics by engine.
func (e *Engine) Algorithm() string { return e.cfg.Algorithm }

// SpeedsKmh returns the configured cruise-speed buckets.
func (e *Engine) SpeedsKmh() []float64 {
	return append([]float64(nil), e.cfg.SpeedsKmh...)
}

// bucketFor snaps a cruise speed to the nearest configured bucket.
func (e *Engine) bucketFor(speedKmh float64) (int, error) {
	if speedKmh <= 0 || math.IsNaN(speedKmh) || math.IsInf(speedKmh, 0) {
		return 0, fmt.Errorf("ecoroute: invalid cruise speed %v km/h", speedKmh)
	}
	best, bestGap := 0, math.Inf(1)
	for i, s := range e.cfg.SpeedsKmh {
		if gap := math.Abs(s - speedKmh); gap < bestGap {
			best, bestGap = i, gap
		}
	}
	return best, nil
}

// Errors a caller can branch on.
var (
	// ErrUnknownNode marks a query endpoint that is not in the network.
	ErrUnknownNode = errors.New("ecoroute: unknown node")
	// ErrNoPath marks a disconnected origin/destination pair.
	ErrNoPath = errors.New("ecoroute: no path")
)

// Plan is one answered routing query.
type Plan struct {
	From, To  int
	Objective Objective
	// SpeedKmh is the snapped cruise-speed bucket the plan was costed at.
	SpeedKmh float64
	// RoadIDs are the traversed roads in travel order.
	RoadIDs []string
	// Nodes are the visited junction IDs, From first, To last.
	Nodes []int
	// Cost is the summed edge cost under the objective (m, s, gal, or g).
	Cost    float64
	LengthM float64
	TimeS   float64
	FuelGal float64
	CO2G    float64
	// EmisG holds the route's per-pollutant grams under the operating-mode
	// model (indexed by emission.Pollutant). Filled only for pollutant
	// objectives — their cost tables are already materialized then; other
	// objectives leave it zero (use Engine.PlanEmissions to fill it).
	EmisG emission.Grams
}

// buildPlan assembles the public result from an edge-index path. Costs are
// summed in travel order so the identical path always produces the
// bit-identical total, regardless of which search found it.
func (e *Engine) buildPlan(obj Objective, bucket int, tb *tables, from, to int, path []int32) Plan {
	p := Plan{
		From:      from,
		To:        to,
		Objective: obj,
		SpeedKmh:  e.cfg.SpeedsKmh[bucket],
		RoadIDs:   make([]string, 0, len(path)),
		Nodes:     make([]int, 0, len(path)+1),
	}
	p.Nodes = append(p.Nodes, from)
	fuelRow := tb.fuel[bucket]
	timeRow := e.timeS[bucket]
	for _, ei := range path {
		p.RoadIDs = append(p.RoadIDs, e.edges[ei].Road.ID())
		p.Nodes = append(p.Nodes, e.ids[e.head[ei]])
		p.LengthM += e.lengthM[ei]
		p.TimeS += timeRow[ei]
		p.FuelGal += fuelRow[ei]
	}
	p.CO2G = p.FuelGal * fuel.CO2GramsPerGallon
	cost := e.costRow(obj, bucket, tb)
	for _, ei := range path {
		p.Cost += cost[ei]
	}
	if _, ok := pollutantOf(obj); ok {
		// The bucket's pollutant rows were materialized by costRow above;
		// summing all four species is four contiguous row walks.
		for _, sp := range emission.Pollutants() {
			row := e.emissionRow(sp, bucket, tb)
			for _, ei := range path {
				p.EmisG[sp] += row[ei]
			}
		}
	}
	return p
}

// costRow returns the per-edge cost slice for an objective. CO2 shares
// Fuel's row scaled by the emission factor (same argmin, gram-denominated
// cost); the scaled row is built lazily per snapshot, as are the pollutant
// rows (one integration pass fills all four species for a bucket).
func (e *Engine) costRow(obj Objective, bucket int, tb *tables) []float64 {
	switch obj {
	case Distance:
		return e.lengthM
	case Time:
		return e.timeS[bucket]
	case CO2:
		return tb.co2Row(bucket)
	case NOx, CO, HC, PM:
		sp, _ := pollutantOf(obj)
		return e.emissionRow(sp, bucket, tb)
	default:
		return tb.fuel[bucket]
	}
}

// metricFor collapses objectives onto the distinct search metrics: CO2 is a
// constant multiple of Fuel, so both route on the fuel row and share ALT
// landmark tables. Each pollutant is its own metric — the binned rates are
// not proportional to fuel or to each other.
func metricFor(obj Objective) Objective {
	if obj == CO2 {
		return Fuel
	}
	return obj
}

// Route answers a point-to-point query with the configured search — ALT
// (bidirectional Dijkstra pruned by landmark lower bounds) or CCH (PQ-free
// elimination-tree search over the contracted hierarchy). The returned plan's
// Cost is bit-identical to RouteDijkstra's for the same query.
func (e *Engine) Route(obj Objective, speedKmh float64, from, to int) (Plan, error) {
	return e.route(obj, speedKmh, from, to, true)
}

// RouteDijkstra answers the same query with plain one-directional Dijkstra —
// the reference implementation the optimized search is verified against.
func (e *Engine) RouteDijkstra(obj Objective, speedKmh float64, from, to int) (Plan, error) {
	return e.route(obj, speedKmh, from, to, false)
}

func (e *Engine) route(obj Objective, speedKmh float64, from, to int, fast bool) (Plan, error) {
	defer observeRoute(obj)()
	bucket, err := e.bucketFor(speedKmh)
	if err != nil {
		return Plan{}, err
	}
	s, ok := e.idx[from]
	if !ok {
		return Plan{}, fmt.Errorf("%w %d", ErrUnknownNode, from)
	}
	t, ok := e.idx[to]
	if !ok {
		return Plan{}, fmt.Errorf("%w %d", ErrUnknownNode, to)
	}
	tb, err := e.fresh()
	if err != nil {
		return Plan{}, err
	}
	if s == t {
		return e.buildPlan(obj, bucket, tb, from, to, nil), nil
	}
	cost := e.costRow(metricFor(obj), bucket, tb)
	var path []int32
	switch {
	case fast && e.cfg.Algorithm == AlgCCH:
		path, ok = e.searchCCH(metricFor(obj), bucket, tb, int32(s), int32(t))
	case fast:
		lm := e.landmarksFor(metricFor(obj), bucket, tb)
		path, ok = e.searchBidirectional(cost, lm, int32(s), int32(t))
	default:
		path, ok = e.searchDijkstra(cost, int32(s), int32(t))
	}
	if !ok {
		return Plan{}, fmt.Errorf("%w from %d to %d", ErrNoPath, from, to)
	}
	return e.buildPlan(obj, bucket, tb, from, to, path), nil
}
