package ecoroute

import (
	"fmt"

	"roadgrade/internal/emission"
	"roadgrade/internal/obs"
)

// This file wires the operating-mode pollutant model (internal/emission)
// into the cost-table machinery. Pollutant rows live inside the same
// immutable snapshots as the fuel rows but are built lazily — one
// integration pass per bucket fills all four species — and incrementally:
// an edge whose generation stamp is unchanged from the previous snapshot
// copies its values instead of re-integrating.

var (
	obsEmisBuilds = obs.Default.Counter("ecoroute_emission_row_builds_total")
	obsEmisReused = obs.Default.Counter("ecoroute_emission_edge_cache_hits_total")
	obsEmisRecomp = obs.Default.Counter("ecoroute_emission_edge_cache_misses_total")
)

// pollutantOf maps a pollutant objective to its emission species.
func pollutantOf(obj Objective) (emission.Pollutant, bool) {
	switch obj {
	case NOx:
		return emission.NOx, true
	case CO:
		return emission.CO, true
	case HC:
		return emission.HC, true
	case PM:
		return emission.PM25, true
	}
	return 0, false
}

// gradeDependent reports whether a search metric's costs change when road
// grades change — these metrics key their landmark tables and CCH weights
// to the snapshot's cost version so a re-fusion invalidates them.
func gradeDependent(metric Objective) bool {
	if metric == Fuel {
		return true
	}
	_, ok := pollutantOf(metric)
	return ok
}

// emissionRow returns the per-edge gram cost slice of one pollutant at one
// bucket, materializing the bucket's four rows on first use.
func (e *Engine) emissionRow(sp emission.Pollutant, bucket int, tb *tables) []float64 {
	tb.emisOnce[bucket].Do(func() {
		nEdges := len(e.edges)
		rows := make([][]float64, emission.NumPollutants)
		for p := range rows {
			rows[p] = make([]float64, nEdges)
		}
		prev := tb.emisPrev[bucket]
		for i, ed := range e.edges {
			if prev != nil && tb.emisPrevGen[i] == tb.edgeGen[i] {
				for p := range rows {
					rows[p][i] = prev[p][i]
				}
				obsEmisReused.Inc()
				continue
			}
			obsEmisRecomp.Inc()
			v := e.cfg.SpeedsKmh[bucket] / 3.6 * e.cfg.classFactor(ed.Road.Class())
			g := edgeEmissionGrams(e.cfg.Emission, tb.gradeAt[i], e.lengthM[i], v, e.cfg.SampleStepM)
			for p := range rows {
				rows[p][i] = g[p]
			}
		}
		tb.emis[bucket] = rows
		tb.emisBuilt[bucket].Store(true)
		obsEmisBuilds.Inc()
	})
	return tb.emis[bucket][sp]
}

// edgeEmissionGrams integrates the operating-mode rates along one edge at a
// constant cruise speed, mirroring edgeFuelGallons cell for cell: grade is
// sampled at each stepM cell's midpoint and per-cell grams accumulate as
// rate × dt / 3600 per species. params must already be defaulted (Config
// does this once).
func edgeEmissionGrams(params emission.Params, grade func(float64) float64, lengthM, speedMS, stepM float64) emission.Grams {
	var out emission.Grams
	if lengthM <= 0 || speedMS <= 0 || stepM <= 0 {
		return out
	}
	for s := 0.0; s < lengthM; s += stepM {
		ds := stepM
		if s+ds > lengthM {
			ds = lengthM - s
		}
		if ds <= 0 {
			break
		}
		dt := ds / speedMS
		row := params.RatesGPH(speedMS, 0, grade(s+ds/2))
		for p := range out {
			out[p] += row[p] * dt / 3600
		}
	}
	return out
}

// PlanEmissions evaluates the operating-mode pollutant grams of an already
// answered plan — e.g. what a min-fuel route costs in NOx. Pollutant-
// objective plans carry this in Plan.EmisG already; for other objectives
// this walks the plan's roads over the current snapshot's emission rows.
func (e *Engine) PlanEmissions(p Plan) (emission.Grams, error) {
	bucket, err := e.bucketFor(p.SpeedKmh)
	if err != nil {
		return emission.Grams{}, err
	}
	tb, err := e.fresh()
	if err != nil {
		return emission.Grams{}, err
	}
	var out emission.Grams
	for _, sp := range emission.Pollutants() {
		row := e.emissionRow(sp, bucket, tb)
		for _, id := range p.RoadIDs {
			i, ok := e.roadEdge[id]
			if !ok {
				return emission.Grams{}, fmt.Errorf("ecoroute: plan road %q not in network", id)
			}
			out[sp] += row[i]
		}
	}
	return out, nil
}
