package ecoroute

import (
	"roadgrade/internal/fusion"
	"roadgrade/internal/road"
)

// EdgeGrades is one edge's gradient data as seen when traversing the edge
// from its From node: At(s) is the grade (radians) at arc length s, Gen a
// stamp that changes whenever the underlying data changes. Stamps gate the
// cost cache — an edge whose stamp is unchanged keeps its cached cost.
type EdgeGrades struct {
	Gen uint64
	At  func(s float64) float64
}

// GradeSource supplies per-edge gradient profiles to the engine.
type GradeSource interface {
	// Generation is an O(1) counter that changes whenever any edge's grades
	// may have changed; the engine's warm path is one comparison against it.
	Generation() uint64
	// Edge returns grade data for traversing fwd from its start. rev, when
	// non-nil, is the opposite-direction road between the same junctions,
	// usable as a sign-flipped fallback when fwd itself has no data.
	Edge(fwd, rev *road.Road) EdgeGrades
}

// TruthSource reads each road's built-in ground-truth profile. Generations
// never change, so cost tables build exactly once.
type TruthSource struct{}

// Generation always reports 0: ground truth never changes.
func (TruthSource) Generation() uint64 { return 0 }

// Edge serves the road's own profile.
func (TruthSource) Edge(fwd, _ *road.Road) EdgeGrades {
	return EdgeGrades{Gen: 1, At: fwd.GradeAt}
}

// FlatSource assumes every road is flat — the "without considering road
// gradient" baseline of §IV-C, useful for quantifying what gradient
// awareness buys a route planner.
type FlatSource struct{}

// Generation always reports 0.
func (FlatSource) Generation() uint64 { return 0 }

// Edge serves a zero grade everywhere.
func (FlatSource) Edge(_, _ *road.Road) EdgeGrades {
	return EdgeGrades{Gen: 1, At: func(float64) float64 { return 0 }}
}

// CloudStore is the slice of the cloud fusion server the engine consumes;
// *cloud.Server implements it. Returned profiles must be immutable snapshots
// (the cloud store's are: writers replace, never mutate).
type CloudStore interface {
	// StoreGeneration is a counter bumped on every accepted submission.
	StoreGeneration() uint64
	// FusedGeneration returns the road's fused profile and the road's
	// generation counter, or an error when the road has no submissions.
	FusedGeneration(roadID string) (*fusion.Profile, uint64, error)
}

// CloudSource sources grades from crowd-fused cloud profiles. A road nobody
// has driven falls back to the opposite direction's profile with the grade
// sign flipped and the arc reversed (climbing one way is descending the
// other); failing that, to Fallback (flat when nil).
type CloudSource struct {
	Store CloudStore
	// Fallback supplies grades for roads with no submissions in either
	// direction. Nil means flat (grade 0) — the honest "unknown" value.
	Fallback func(r *road.Road, s float64) float64
}

// Generation mirrors the store's global submission counter.
func (c CloudSource) Generation() uint64 { return c.Store.StoreGeneration() }

// Edge stamps are disjoint by provenance — 3g+1 for a forward profile at
// road generation g, 3g+2 for a reverse fallback, 0 for no data — so an edge
// switching provenance (e.g. its own direction finally gets driven) always
// changes stamp and recosts.
func (c CloudSource) Edge(fwd, rev *road.Road) EdgeGrades {
	if p, gen, err := c.Store.FusedGeneration(fwd.ID()); err == nil {
		return EdgeGrades{Gen: 3*gen + 1, At: p.GradeAt}
	}
	if rev != nil {
		if p, gen, err := c.Store.FusedGeneration(rev.ID()); err == nil {
			length := rev.Length()
			return EdgeGrades{Gen: 3*gen + 2, At: func(s float64) float64 {
				return -p.GradeAt(length - s)
			}}
		}
	}
	if c.Fallback != nil {
		return EdgeGrades{Gen: 0, At: func(s float64) float64 { return c.Fallback(fwd, s) }}
	}
	return EdgeGrades{Gen: 0, At: func(float64) float64 { return 0 }}
}
