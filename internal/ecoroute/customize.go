package ecoroute

import (
	"math"
	"sync/atomic"

	"roadgrade/internal/obs"
)

// This file is phase 2 of the CCH (DESIGN.md §13): customization. It maps one
// per-edge cost row onto the contracted topology, producing the upward and
// downward weight of every arc by the basic customization — one ascending
// pass of lower-triangle relaxations. Because fusion ticks stamp exactly the
// edges whose grades changed (tables.edgeGen, the PR 5 invalidation signal),
// re-customization after a tick is incremental: only arcs carrying a stamped
// edge are re-derived, and changes propagate through the dependents index to
// just the triangles that can feel them.

var (
	obsCCHCustFull = obs.Default.Counter("ecoroute_cch_customizations_total", obs.L("kind", "full"))
	obsCCHCustIncr = obs.Default.Counter("ecoroute_cch_customizations_total", obs.L("kind", "incremental"))
	obsCCHArcs     = obs.Default.Counter("ecoroute_cch_arcs_recomputed_total")
)

// cchWeights is one immutable customized metric: per-arc upward (lo→hi) and
// downward (hi→lo) shortest-path weights plus the via encoding that unpacks
// them back into original edges. Queries read it lock-free; a re-fusion
// builds a successor (incrementally) and the cache swaps the pointer.
//
// via values: -1 = unreachable in that direction; v <= -2 = the original
// edge with index -2-v; v >= 0 = the flat triangle index whose two arcs the
// weight decomposes into.
type cchWeights struct {
	up, dn       []float64
	viaUp, viaDn []int32
	// edgeGen is the tables.edgeGen stamp row this metric was customized
	// against (shared with the immutable snapshot); diffing it against a new
	// snapshot's row yields exactly the dirty edges.
	edgeGen []uint64
	version uint64
	// refs counts in-flight readers. cchWeightsFor increments it under the
	// cache mutex before handing the table out; every reader releases when its
	// search ends. A superseded table whose count has drained to zero can have
	// its ~24 bytes/arc of arrays recycled into the next customization —
	// without recycling, the copy-on-write allocation (fresh pages, faulted in
	// during the copy) costs more than re-deriving the dirty arcs themselves.
	refs atomic.Int32
}

// release marks the end of one reader's use of the table.
func (w *cchWeights) release() { w.refs.Add(-1) }

// newCCHWeights returns a weight table over spare's arrays when one is
// available (recycled, already-faulted memory) or freshly allocated ones.
func newCCHWeights(nArcs int, edgeGen []uint64, version uint64, spare *cchWeights) *cchWeights {
	w := spare
	if w == nil {
		w = &cchWeights{
			up: make([]float64, nArcs), dn: make([]float64, nArcs),
			viaUp: make([]int32, nArcs), viaDn: make([]int32, nArcs),
		}
	}
	w.edgeGen, w.version = edgeGen, version
	return w
}

// cchCustStats records how the most recent customization ran, for tests and
// the routescale experiment.
type cchCustStats struct {
	full           bool
	recomputedArcs int
	totalArcs      int
}

// lastCustStats returns the stats of the engine's most recent customization.
func (e *Engine) lastCustStats() cchCustStats {
	e.cchWMu.Lock()
	defer e.cchWMu.Unlock()
	return e.lastCust
}

// CustStats reports how a CCH engine's most recent customization ran — the
// observable form of the generation-keyed invalidation claim: after a fusion
// tick, RecomputedArcs ≪ TotalArcs.
type CustStats struct {
	// Full is true for a from-scratch customization, false for an
	// incremental re-customization seeded by a superseded table.
	Full bool
	// RecomputedArcs counts arcs whose weights were re-derived;
	// TotalArcs is the hierarchy's arc count (shortcuts included).
	RecomputedArcs, TotalArcs int
}

// LastCustomization returns the most recent customization's stats. Zero
// value until a CCH query has run (or on an ALT engine).
func (e *Engine) LastCustomization() CustStats {
	s := e.lastCustStats()
	return CustStats{Full: s.full, RecomputedArcs: s.recomputedArcs, TotalArcs: s.totalArcs}
}

// computeArc derives arc a's weights from scratch: the cheapest original edge
// in each direction, then every lower triangle (both referenced arcs have
// smaller indices, so in an ascending pass their weights are final). Reports
// whether anything changed versus what w currently holds.
func (g *cch) computeArc(w *cchWeights, cost []float64, a int32) bool {
	up, dn := math.Inf(1), math.Inf(1)
	vUp, vDn := int32(-1), int32(-1)
	for k := g.upEdgeOff[a]; k < g.upEdgeOff[a+1]; k++ {
		ei := g.upEdge[k]
		if c := cost[ei]; c < up {
			up, vUp = c, -2-ei
		}
	}
	for k := g.dnEdgeOff[a]; k < g.dnEdgeOff[a+1]; k++ {
		ei := g.dnEdge[k]
		if c := cost[ei]; c < dn {
			dn, vDn = c, -2-ei
		}
	}
	for t := g.triOff[a]; t < g.triOff[a+1]; t++ {
		lo, hi := g.triLo[t], g.triHi[t]
		// Arc {u,v} via x: u→x→v uses dn of {x,u} then up of {x,v};
		// v→x→u uses dn of {x,v} then up of {x,u}.
		if c := w.dn[lo] + w.up[hi]; c < up {
			up, vUp = c, t
		}
		if c := w.dn[hi] + w.up[lo]; c < dn {
			dn, vDn = c, t
		}
	}
	changed := math.Float64bits(up) != math.Float64bits(w.up[a]) ||
		math.Float64bits(dn) != math.Float64bits(w.dn[a]) ||
		vUp != w.viaUp[a] || vDn != w.viaDn[a]
	w.up[a], w.dn[a] = up, dn
	w.viaUp[a], w.viaDn[a] = vUp, vDn
	return changed
}

// customize runs the full basic customization: every arc, ascending. spare,
// when non-nil, is a drained retired table whose arrays are reused.
func (g *cch) customize(cost []float64, edgeGen []uint64, version uint64, spare *cchWeights) *cchWeights {
	nArcs := len(g.arcLo)
	w := newCCHWeights(nArcs, edgeGen, version, spare)
	for a := int32(0); a < int32(nArcs); a++ {
		g.computeArc(w, cost, a)
	}
	return w
}

// recustomize derives a successor weight table from old after a generation
// tick: diff the stamp rows for dirty edges, re-derive their arcs ascending,
// and fan actual changes out through the dependents index. Arc indices only
// grow along dependency edges, so one ascending sweep settles everything.
// old is never mutated — in-flight queries keep reading it. spare, when
// non-nil, supplies recycled arrays for the successor (it must not alias old).
// Returns the new table and the number of arcs re-derived.
func (g *cch) recustomize(old *cchWeights, cost []float64, edgeGen []uint64, version uint64, spare *cchWeights) (*cchWeights, int) {
	nArcs := len(g.arcLo)
	w := newCCHWeights(nArcs, edgeGen, version, spare)
	copy(w.up, old.up)
	copy(w.dn, old.dn)
	copy(w.viaUp, old.viaUp)
	copy(w.viaDn, old.viaDn)
	dirty := make([]bool, nArcs)
	any := false
	for i, gen := range edgeGen {
		if old.edgeGen[i] != gen {
			if a := g.edgeArc[i]; a >= 0 {
				dirty[a] = true
				any = true
			}
		}
	}
	if !any {
		return w, 0
	}
	recomputed := 0
	for a := int32(0); a < int32(nArcs); a++ {
		if !dirty[a] {
			continue
		}
		recomputed++
		if g.computeArc(w, cost, a) {
			for k := g.depOff[a]; k < g.depOff[a+1]; k++ {
				dirty[g.depArc[k]] = true
			}
		}
	}
	return w, recomputed
}

// cchRetiredCap bounds the freelist of drained superseded tables; beyond it
// the GC takes them (each is ~24 bytes per arc).
const cchRetiredCap = 4

// cchRetire queues a table no longer reachable from the cache for recycling.
// Caller holds cchWMu.
func (e *Engine) cchRetire(w *cchWeights) {
	if len(e.cchRetired) < cchRetiredCap {
		e.cchRetired = append(e.cchRetired, w)
	}
}

// cchSpare pops a retired table with no remaining readers, or nil. Caller
// holds cchWMu; because readers only acquire tables under that mutex and a
// retired table is out of the cache map, refs==0 here is final.
func (e *Engine) cchSpare() *cchWeights {
	for i, w := range e.cchRetired {
		if w.refs.Load() == 0 {
			e.cchRetired = append(e.cchRetired[:i], e.cchRetired[i+1:]...)
			return w
		}
	}
	return nil
}

// cchWeightsFor returns (customizing if needed) the weight table for a metric
// and bucket on the given snapshot, under the same cache key discipline as
// the ALT landmark tables: Distance ignores the bucket, Distance/Time never
// invalidate, grade-dependent metrics (Fuel and the pollutants) are keyed to
// the snapshot's cost version. A superseded grade-dependent table is not
// discarded — it seeds the incremental re-customization, then joins the
// retired freelist so its arrays back a later customization.
//
// The returned table has one reader reference held for the caller, who must
// release() it when the search is done.
func (e *Engine) cchWeightsFor(metric Objective, bucket int, tb *tables) *cchWeights {
	g := e.cchGraph()
	key := lmKey{metric: metric, bucket: bucket}
	switch {
	case metric == Distance:
		key.bucket = 0 // distance costs are bucket-independent
	case gradeDependent(metric):
		key.version = tb.version
	}
	e.cchWMu.Lock()
	defer e.cchWMu.Unlock()
	if w, ok := e.cchW[key]; ok {
		w.refs.Add(1)
		return w
	}
	cost := e.costRow(metric, bucket, tb)
	stats := cchCustStats{totalArcs: len(g.arcLo)}
	var w *cchWeights
	if gradeDependent(metric) {
		// The freshest superseded version for this metric and bucket seeds
		// the incremental path; it and any older ones are retired for
		// recycling.
		var prev *cchWeights
		for k, old := range e.cchW {
			if k.metric == metric && k.bucket == key.bucket {
				if prev == nil || old.version > prev.version {
					if prev != nil {
						e.cchRetire(prev)
					}
					prev = old
				} else {
					e.cchRetire(old)
				}
				delete(e.cchW, k)
			}
		}
		if prev != nil {
			w, stats.recomputedArcs = g.recustomize(prev, cost, tb.edgeGen, tb.version, e.cchSpare())
			e.cchRetire(prev)
			obsCCHCustIncr.Inc()
		}
	}
	if w == nil {
		w = g.customize(cost, tb.edgeGen, tb.version, e.cchSpare())
		stats.full = true
		stats.recomputedArcs = stats.totalArcs
		obsCCHCustFull.Inc()
	}
	obsCCHArcs.Add(uint64(stats.recomputedArcs))
	e.lastCust = stats
	e.cchW[key] = w
	w.refs.Add(1)
	return w
}
