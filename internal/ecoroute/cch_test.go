package ecoroute

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

// tickSource serves ground-truth grades except for one flagged road, whose
// grades (and stamp) change with every generation bump — the shape of a
// cloud re-fusion that actually moved an estimate.
type tickSource struct {
	gen    uint64
	roadID string
}

func (s *tickSource) Generation() uint64 { return s.gen }

func (s *tickSource) Edge(fwd, _ *road.Road) EdgeGrades {
	if fwd.ID() == s.roadID {
		gen := s.gen
		return EdgeGrades{
			Gen: gen + 1,
			At:  func(at float64) float64 { return fwd.GradeAt(at) + 0.01*float64(gen) },
		}
	}
	return EdgeGrades{Gen: 1, At: fwd.GradeAt}
}

// TestCCHMatchesDijkstra is the CCH acceptance property (mirroring the PR 5
// bidi≡Dijkstra gate): over ≥40 random O/D pairs and all four objectives,
// the elimination-tree query's cost must equal the plain Dijkstra
// reference's to the last bit.
func TestCCHMatchesDijkstra(t *testing.T) {
	net, err := road.GenerateNetwork(43, road.NetworkConfig{TargetStreetKM: 12})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{Algorithm: AlgCCH})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if eng.Algorithm() != AlgCCH {
		t.Fatalf("Algorithm() = %q, want %q", eng.Algorithm(), AlgCCH)
	}
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for checked < 40 {
		from := net.Nodes[rng.Intn(len(net.Nodes))].ID
		to := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		for _, obj := range Objectives() {
			fast, errF := eng.Route(obj, 40, from, to)
			ref, errR := eng.RouteDijkstra(obj, 40, from, to)
			if (errF == nil) != (errR == nil) {
				t.Fatalf("%s %d→%d: search disagreement: cch err %v, reference err %v", obj, from, to, errF, errR)
			}
			if errF != nil {
				if !errors.Is(errF, ErrNoPath) {
					t.Fatalf("%s %d→%d: %v", obj, from, to, errF)
				}
				continue
			}
			if math.Float64bits(fast.Cost) != math.Float64bits(ref.Cost) {
				t.Errorf("%s %d→%d: cch cost %.17g != Dijkstra cost %.17g",
					obj, from, to, fast.Cost, ref.Cost)
			}
			if fast.Nodes[0] != from || fast.Nodes[len(fast.Nodes)-1] != to {
				t.Errorf("%s %d→%d: unpacked path endpoints %v", obj, from, to, fast.Nodes)
			}
		}
		checked++
	}
}

// TestCCHRecustomizeAfterTick: after a fusion generation tick that changes
// one road's grades, CCH answers must still be bit-identical to Dijkstra on
// the new costs, and the customization that got there must have been
// incremental — a small fraction of the arcs re-derived, not a full pass.
func TestCCHRecustomizeAfterTick(t *testing.T) {
	net, err := road.GenerateNetwork(43, road.NetworkConfig{TargetStreetKM: 80})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	src := &tickSource{roadID: net.Edges[0].Road.ID()}
	eng, err := NewEngine(net, src, Config{Algorithm: AlgCCH})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	pairs := [][2]int{
		{net.Edges[0].From, net.Edges[len(net.Edges)-1].To},
		{net.Nodes[0].ID, net.Nodes[len(net.Nodes)-1].ID},
		{net.Edges[0].To, net.Nodes[len(net.Nodes)/2].ID},
	}
	route := func(tag string) {
		t.Helper()
		for _, p := range pairs {
			fast, errF := eng.Route(Fuel, 40, p[0], p[1])
			ref, errR := eng.RouteDijkstra(Fuel, 40, p[0], p[1])
			if (errF == nil) != (errR == nil) {
				t.Fatalf("%s %v: cch err %v, reference err %v", tag, p, errF, errR)
			}
			if errF != nil {
				continue
			}
			if math.Float64bits(fast.Cost) != math.Float64bits(ref.Cost) {
				t.Errorf("%s %v: cch cost %.17g != Dijkstra %.17g", tag, p, fast.Cost, ref.Cost)
			}
		}
	}
	route("pre-tick")
	st := eng.lastCustStats()
	if !st.full || st.recomputedArcs != st.totalArcs {
		t.Fatalf("first customization should be full: %+v", st)
	}

	src.gen++
	route("post-tick")
	st = eng.lastCustStats()
	if st.full {
		t.Fatalf("post-tick customization ran full instead of incremental: %+v", st)
	}
	if st.recomputedArcs == 0 {
		t.Fatal("post-tick customization re-derived nothing despite a changed edge")
	}
	if st.recomputedArcs >= st.totalArcs/5 {
		t.Fatalf("incremental customization touched %d of %d arcs — not incremental",
			st.recomputedArcs, st.totalArcs)
	}
}

// disconnectedNet builds two islands (1↔2 and 3↔4) to exercise no-path
// handling in both the point query and the matrix.
func disconnectedNet(t *testing.T) *road.Network {
	t.Helper()
	grades := constGrades(10, 0)
	lengthM := 5 * float64(len(grades))
	a, b := geo.ENU{E: 0, N: 0}, geo.ENU{E: lengthM, N: 0}
	c, d := geo.ENU{E: 0, N: 10 * lengthM}, geo.ENU{E: lengthM, N: 10 * lengthM}
	net, err := road.NewNetwork(
		[]road.Node{{ID: 1, Pos: a}, {ID: 2, Pos: b}, {ID: 3, Pos: c}, {ID: 4, Pos: d}},
		[]*road.Edge{
			{From: 1, To: 2, Road: slopedRoad(t, "st-a-0", a, b, grades)},
			{From: 2, To: 1, Road: slopedRoad(t, "st-a-1", b, a, reversed(grades))},
			{From: 3, To: 4, Road: slopedRoad(t, "st-b-0", c, d, grades)},
			{From: 4, To: 3, Road: slopedRoad(t, "st-b-1", d, c, reversed(grades))},
		},
	)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	return net
}

func TestCCHNoPath(t *testing.T) {
	eng, err := NewEngine(disconnectedNet(t), TruthSource{}, Config{
		Algorithm: AlgCCH, SpeedsKmh: []float64{40},
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng.Route(Fuel, 40, 1, 3); !errors.Is(err, ErrNoPath) {
		t.Errorf("disconnected cch route: got %v, want ErrNoPath", err)
	}
	if plan, err := eng.Route(Fuel, 40, 1, 2); err != nil || len(plan.RoadIDs) != 1 {
		t.Errorf("same-island cch route: %+v, %v", plan, err)
	}
	grid, err := eng.Matrix(Fuel, 40, []int{1, 3}, []int{2, 4})
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	if math.IsInf(grid[0][0], 1) || !math.IsInf(grid[0][1], 1) ||
		!math.IsInf(grid[1][0], 1) || math.IsInf(grid[1][1], 1) {
		t.Errorf("matrix reachability wrong: %v", grid)
	}
}

// TestCCHMatrixMatchesPointQueries: the bucket-based many-to-many grid must
// agree with point answers on the CCH engine, like the ALT matrix test.
func TestCCHMatrixMatchesPointQueries(t *testing.T) {
	net, err := road.GenerateNetwork(47, road.NetworkConfig{TargetStreetKM: 8})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{Algorithm: AlgCCH})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	var nodes []int
	seen := map[int]bool{}
	for len(nodes) < 8 {
		id := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	for _, obj := range []Objective{Distance, Time, Fuel, CO2} {
		grid, err := eng.Matrix(obj, 40, nodes, nodes)
		if err != nil {
			t.Fatalf("matrix %s: %v", obj, err)
		}
		for i, from := range nodes {
			for j, to := range nodes {
				if from == to {
					if grid[i][j] != 0 {
						t.Errorf("%s: diagonal [%d][%d] = %v, want 0", obj, i, j, grid[i][j])
					}
					continue
				}
				plan, err := eng.RouteDijkstra(obj, 40, from, to)
				if errors.Is(err, ErrNoPath) {
					if !math.IsInf(grid[i][j], 1) {
						t.Errorf("%s %d→%d: matrix %v, want +Inf", obj, from, to, grid[i][j])
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s %d→%d: %v", obj, from, to, err)
				}
				if diff := math.Abs(grid[i][j] - plan.Cost); diff > 1e-9*math.Max(1, plan.Cost) {
					t.Errorf("%s %d→%d: matrix cost %.12g, route cost %.12g", obj, from, to, grid[i][j], plan.Cost)
				}
			}
		}
	}
}

// TestMatrixCtxCancel: a canceled context must abort the matrix promptly with
// the context's error instead of finishing the grid, on both engines.
func TestMatrixCtxCancel(t *testing.T) {
	net, err := road.GenerateNetwork(43, road.NetworkConfig{TargetStreetKM: 40})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	var nodes []int
	for i := 0; i < 30; i++ {
		nodes = append(nodes, net.Nodes[i*len(net.Nodes)/30].ID)
	}
	for _, alg := range []string{AlgALT, AlgCCH} {
		eng, err := NewEngine(net, TruthSource{}, Config{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s engine: %v", alg, err)
		}
		// Already-canceled context: no row may be computed.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.MatrixCtx(ctx, Fuel, 40, nodes, nodes); !errors.Is(err, context.Canceled) {
			t.Errorf("%s pre-canceled matrix: got %v, want context.Canceled", alg, err)
		}
		// Mid-run cancel: the call must return well before a full grid would.
		ctx2, cancel2 := context.WithCancel(context.Background())
		timer := time.AfterFunc(10*time.Millisecond, cancel2)
		start := time.Now()
		_, err = eng.MatrixCtx(ctx2, Fuel, 40, nodes, nodes)
		elapsed := time.Since(start)
		timer.Stop()
		cancel2()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("%s mid-run cancel: unexpected error %v", alg, err)
		}
		// err == nil means the grid beat the timer, which is fine for speed;
		// but a canceled run must not have kept grinding for seconds.
		if err != nil && elapsed > 2*time.Second {
			t.Errorf("%s: canceled matrix still ran %v", alg, elapsed)
		}
		cancel()
	}
}

func TestParseAlgorithm(t *testing.T) {
	for in, want := range map[string]string{"": AlgALT, "alt": AlgALT, "ALT": AlgALT, "cch": AlgCCH, "CCH": AlgCCH} {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("astar"); err == nil {
		t.Error("ParseAlgorithm(astar): want error")
	}
	net := twoNodeNet(t, constGrades(10, 0))
	if _, err := NewEngine(net, TruthSource{}, Config{Algorithm: "astar"}); err == nil {
		t.Error("NewEngine with bad algorithm: want error")
	}
}
