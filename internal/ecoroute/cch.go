package ecoroute

import "sort"

// This file is phase 1 of the customizable contraction hierarchy (DESIGN.md
// §13): the metric-independent contraction. It depends only on the network
// topology and node coordinates, never on costs, so it is built exactly once
// per engine and survives every fusion generation tick.
//
// Nodes are identified by RANK — their position in the nested-dissection
// elimination order — throughout; dense engine indices appear only at the
// order/rank translation boundary. An "arc" is an undirected edge {lo, hi}
// (lo < hi in rank) of the chordal supergraph produced by the elimination
// game: the original street graph plus every shortcut the contraction
// inserts. Each arc later carries one upward (lo→hi) and one downward
// (hi→lo) weight per customized metric.

// ndLeafSize is the cell size below which nested dissection stops splitting
// and just emits the nodes; small leaves are local grid patches whose
// elimination fill-in is negligible.
const ndLeafSize = 64

type cch struct {
	order  []int32 // rank → dense node index
	rank   []int32 // dense node index → rank
	parent []int32 // rank → elimination-tree parent rank, -1 at roots

	// Arcs sorted by (lo, hi); the arcs with lo == u occupy the contiguous
	// index range [upOff[u], upOff[u+1]), which doubles as u's upward
	// adjacency — the CCH invariant "upward neighbors of u are exactly u's
	// elimination-tree ancestors that u shares an arc with".
	upOff []int32
	arcLo []int32 // per arc: lower-rank endpoint
	arcHi []int32 // per arc: higher-rank endpoint

	// Original directed edges folded onto arcs: upEdge lists edges traveling
	// lo→hi, dnEdge lists hi→lo (CSR per arc). edgeArc maps each engine edge
	// to its arc (-1 for a same-rank self loop, which cannot occur for
	// distinct endpoints).
	upEdgeOff []int32
	upEdge    []int32
	dnEdgeOff []int32
	dnEdge    []int32
	edgeArc   []int32

	// Lower triangles per arc a = {u, v}: every x with rank(x) < rank(u)
	// adjacent to both endpoints contributes the pair (triLo = arc {x, u},
	// triHi = arc {x, v}). Both referenced arcs have lo == x < u = lo(a), so
	// they sit at strictly smaller arc indices — customization is one
	// ascending pass and incremental dirt only ever propagates upward.
	triOff []int32
	triLo  []int32
	triHi  []int32

	// Dependents: depArc lists, for each arc, the (higher-indexed) arcs whose
	// triangle lists reference it — the fan-out set incremental
	// re-customization walks when a weight actually changes.
	depOff []int32
	depArc []int32
}

// buildCCH contracts the engine's graph: nested-dissection order, elimination
// game with clique fill-in, then the flat arc/triangle/dependent indices.
// Everything is deterministic — sorted neighbor lists, index-ordered loops.
func buildCCH(e *Engine) *cch {
	n := len(e.ids)
	g := &cch{}
	g.order = ndOrder(e)
	g.rank = make([]int32, n)
	for r, v := range g.order {
		g.rank[v] = int32(r)
	}

	// Elimination game in rank space. nbr[u] holds u's current higher
	// neighbors; contracting u (ascending) turns them into a clique.
	nbr := make([]map[int32]struct{}, n)
	add := func(lo, hi int32) {
		if nbr[lo] == nil {
			nbr[lo] = make(map[int32]struct{}, 8)
		}
		nbr[lo][hi] = struct{}{}
	}
	for i := range e.edges {
		u, v := g.rank[e.tail[i]], g.rank[e.head[i]]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		add(u, v)
	}
	g.parent = make([]int32, n)
	upNbrs := make([][]int32, n)
	for u := 0; u < n; u++ {
		g.parent[u] = -1
		set := nbr[u]
		if len(set) == 0 {
			continue
		}
		list := make([]int32, 0, len(set))
		for v := range set {
			list = append(list, v)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		upNbrs[u] = list
		g.parent[u] = list[0]
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				add(list[i], list[j])
			}
		}
		nbr[u] = nil // the set is frozen into upNbrs; free the map
	}

	// Flatten the arcs, sorted by (lo, hi): ascending u with sorted upNbrs[u]
	// is already that order.
	g.upOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		g.upOff[u+1] = g.upOff[u] + int32(len(upNbrs[u]))
	}
	nArcs := int(g.upOff[n])
	g.arcLo = make([]int32, nArcs)
	g.arcHi = make([]int32, nArcs)
	for u := 0; u < n; u++ {
		at := g.upOff[u]
		for _, v := range upNbrs[u] {
			g.arcLo[at] = int32(u)
			g.arcHi[at] = v
			at++
		}
	}

	// Original edges → arcs.
	g.edgeArc = make([]int32, len(e.edges))
	upCnt := make([]int32, nArcs)
	dnCnt := make([]int32, nArcs)
	for i := range e.edges {
		u, v := g.rank[e.tail[i]], g.rank[e.head[i]]
		if u == v {
			g.edgeArc[i] = -1
			continue
		}
		if u < v {
			a := g.arcIndex(u, v)
			g.edgeArc[i] = a
			upCnt[a]++
		} else {
			a := g.arcIndex(v, u)
			g.edgeArc[i] = a
			dnCnt[a]++
		}
	}
	g.upEdgeOff = prefixSum(upCnt)
	g.dnEdgeOff = prefixSum(dnCnt)
	g.upEdge = make([]int32, g.upEdgeOff[nArcs])
	g.dnEdge = make([]int32, g.dnEdgeOff[nArcs])
	upCur := make([]int32, nArcs)
	dnCur := make([]int32, nArcs)
	for i := range e.edges {
		a := g.edgeArc[i]
		if a < 0 {
			continue
		}
		if g.rank[e.tail[i]] < g.rank[e.head[i]] {
			g.upEdge[g.upEdgeOff[a]+upCur[a]] = int32(i)
			upCur[a]++
		} else {
			g.dnEdge[g.dnEdgeOff[a]+dnCur[a]] = int32(i)
			dnCur[a]++
		}
	}

	// Lower triangles: for every node x and ordered pair (u, v) of its upward
	// neighbors, the clique fill guarantees arc {u, v} exists and gains the
	// triangle ({x,u}, {x,v}). Counted then filled, both in the same
	// deterministic enumeration order.
	triCnt := make([]int32, nArcs)
	for x := 0; x < n; x++ {
		list := upNbrs[x]
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				triCnt[g.arcIndex(list[i], list[j])]++
			}
		}
	}
	g.triOff = prefixSum(triCnt)
	nTri := int(g.triOff[nArcs])
	g.triLo = make([]int32, nTri)
	g.triHi = make([]int32, nTri)
	triCur := make([]int32, nArcs)
	for x := 0; x < n; x++ {
		list := upNbrs[x]
		for i := 0; i < len(list); i++ {
			aLo := g.arcIndex(int32(x), list[i])
			for j := i + 1; j < len(list); j++ {
				a := g.arcIndex(list[i], list[j])
				at := g.triOff[a] + triCur[a]
				g.triLo[at] = aLo
				g.triHi[at] = g.arcIndex(int32(x), list[j])
				triCur[a]++
			}
		}
	}

	// Invert the triangle references into the dependents index.
	depCnt := make([]int32, nArcs)
	for t := 0; t < nTri; t++ {
		depCnt[g.triLo[t]]++
		depCnt[g.triHi[t]]++
	}
	g.depOff = prefixSum(depCnt)
	g.depArc = make([]int32, g.depOff[nArcs])
	depCur := make([]int32, nArcs)
	put := func(b, a int32) {
		g.depArc[g.depOff[b]+depCur[b]] = a
		depCur[b]++
	}
	for a := int32(0); a < int32(nArcs); a++ {
		for t := g.triOff[a]; t < g.triOff[a+1]; t++ {
			put(g.triLo[t], a)
			put(g.triHi[t], a)
		}
	}
	return g
}

// arcIndex locates arc {lo, hi} by binary search in lo's sorted upward
// range. Callers only ask for arcs the elimination game created.
func (g *cch) arcIndex(lo, hi int32) int32 {
	a, b := g.upOff[lo], g.upOff[lo+1]
	for a < b {
		if m := (a + b) / 2; g.arcHi[m] < hi {
			a = m + 1
		} else {
			b = m
		}
	}
	return a
}

// prefixSum turns per-item counts into CSR offsets (len(counts)+1 entries).
func prefixSum(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}

// ndOrder computes the geometric nested-dissection elimination order: split
// each cell at the coordinate median of its wider axis, take as separator the
// left-half nodes with a neighbor in the right half, order both remainders
// recursively and put the separator on top of the cell. Separators on a
// near-planar street graph are O(√cell), which keeps both the fill-in and
// the elimination-tree height low. Deterministic: every comparison breaks
// ties by dense node index.
func ndOrder(e *Engine) []int32 {
	n := len(e.ids)
	// Undirected neighbor CSR (out heads + in tails; duplicates are fine, the
	// separator test is a membership check).
	deg := make([]int32, n+1)
	for u := 0; u < n; u++ {
		deg[u+1] = deg[u] + (e.outOff[u+1] - e.outOff[u]) + (e.inOff[u+1] - e.inOff[u])
	}
	adj := make([]int32, deg[n])
	cur := make([]int32, n)
	for u := int32(0); u < int32(n); u++ {
		for k := e.outOff[u]; k < e.outOff[u+1]; k++ {
			adj[deg[u]+cur[u]] = e.head[e.outArc[k]]
			cur[u]++
		}
		for k := e.inOff[u]; k < e.inOff[u+1]; k++ {
			adj[deg[u]+cur[u]] = e.tail[e.inArc[k]]
			cur[u]++
		}
	}

	posE := make([]float64, n)
	posN := make([]float64, n)
	for i, nd := range e.net.Nodes {
		posE[i], posN[i] = nd.Pos.E, nd.Pos.N
	}

	order := make([]int32, 0, n)
	cell := make([]int32, n)
	for i := range cell {
		cell[i] = int32(i)
	}
	inRight := make([]int32, n) // generation-stamped right-half marker
	gen := int32(0)

	var dissect func(cell []int32)
	dissect = func(cell []int32) {
		if len(cell) <= ndLeafSize {
			sort.Slice(cell, func(i, j int) bool { return cell[i] < cell[j] })
			order = append(order, cell...)
			return
		}
		minE, maxE := posE[cell[0]], posE[cell[0]]
		minN, maxN := posN[cell[0]], posN[cell[0]]
		for _, v := range cell[1:] {
			if posE[v] < minE {
				minE = posE[v]
			}
			if posE[v] > maxE {
				maxE = posE[v]
			}
			if posN[v] < minN {
				minN = posN[v]
			}
			if posN[v] > maxN {
				maxN = posN[v]
			}
		}
		coord := posE
		if maxN-minN > maxE-minE {
			coord = posN
		}
		sort.Slice(cell, func(i, j int) bool {
			a, b := cell[i], cell[j]
			if coord[a] != coord[b] {
				return coord[a] < coord[b]
			}
			return a < b
		})
		mid := len(cell) / 2
		left, right := cell[:mid], cell[mid:]
		gen++
		markGen := gen
		for _, v := range right {
			inRight[v] = markGen
		}
		var sep, rest []int32
		for _, v := range left {
			onBoundary := false
			for k := deg[v]; k < deg[v+1]; k++ {
				if inRight[adj[k]] == markGen {
					onBoundary = true
					break
				}
			}
			if onBoundary {
				sep = append(sep, v)
			} else {
				rest = append(rest, v)
			}
		}
		dissect(rest)
		dissect(right)
		sort.Slice(sep, func(i, j int) bool { return sep[i] < sep[j] })
		order = append(order, sep...)
	}
	dissect(cell)
	return order
}

// cchGraph builds (once) and returns the engine's contraction.
func (e *Engine) cchGraph() *cch {
	e.cchOnce.Do(func() { e.cchG = buildCCH(e) })
	return e.cchG
}
