package ecoroute

// The ecoroute benchmark family: warm point-to-point query latency (with the
// p95 the acceptance criterion reads), cold-start cost (full cost-table +
// landmark build), and the incremental invalidation cost after a single-road
// re-fusion. All run on the 164.8 km Charlottesville-scale network.
// scripts/bench.sh snapshots this family to BENCH_PR5.json and
// scripts/bench_check.sh gates regressions against it.

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"roadgrade/internal/road"
)

var benchNet = struct {
	once sync.Once
	net  *road.Network
	err  error
}{}

func charlottesville(b *testing.B) *road.Network {
	b.Helper()
	benchNet.once.Do(func() {
		benchNet.net, benchNet.err = road.Charlottesville()
	})
	if benchNet.err != nil {
		b.Fatalf("network: %v", benchNet.err)
	}
	return benchNet.net
}

// benchPairs pre-draws O/D node pairs so the measured loop does no RNG work.
// Pairs are confined to the strongly-connected component around dense node 0
// (the generator can leave a few peripheral nodes unreachable).
func benchPairs(eng *Engine, n int) [][2]int {
	nn := len(eng.ids)
	fwd := make([]float64, nn)
	bwd := make([]float64, nn)
	oneToAll(eng.outOff, eng.outArc, eng.head, eng.lengthM, 0, fwd, nil)
	oneToAll(eng.inOff, eng.inArc, eng.tail, eng.lengthM, 0, bwd, nil)
	var ids []int
	for i := 0; i < nn; i++ {
		if !math.IsInf(fwd[i], 1) && !math.IsInf(bwd[i], 1) {
			ids = append(ids, eng.ids[i])
		}
	}
	rng := rand.New(rand.NewSource(5))
	pairs := make([][2]int, n)
	for i := range pairs {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(len(ids))]
		for to == from {
			to = ids[rng.Intn(len(ids))]
		}
		pairs[i] = [2]int{from, to}
	}
	return pairs
}

// bumpSource wraps ground truth behind a controllable generation so
// benchmarks can force refreshes. Stamps follow stampAll: every edge recosts
// on each bump (cold start), or only the single flagged road does
// (incremental invalidation).
type bumpSource struct {
	gen      uint64
	stampAll bool
	roadID   string
}

func (s *bumpSource) Generation() uint64 { return s.gen }

func (s *bumpSource) Edge(fwd, _ *road.Road) EdgeGrades {
	stamp := uint64(1)
	if s.stampAll || fwd.ID() == s.roadID {
		stamp = s.gen + 1
	}
	return EdgeGrades{Gen: stamp, At: fwd.GradeAt}
}

// BenchmarkEcoRouteWarmQuery is the acceptance benchmark: min-fuel
// point-to-point queries on warm cost tables and landmarks. The reported
// p95-ns metric must stay at or under 1 ms (1e6 ns).
func BenchmarkEcoRouteWarmQuery(b *testing.B) {
	net := charlottesville(b)
	eng, err := NewEngine(net, TruthSource{}, Config{})
	if err != nil {
		b.Fatalf("engine: %v", err)
	}
	pairs := benchPairs(eng, 1024)
	// Prime tables and landmarks.
	if _, err := eng.Route(Fuel, 40, pairs[0][0], pairs[0][1]); err != nil {
		b.Fatalf("prime: %v", err)
	}
	durs := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		start := time.Now()
		_, err := eng.Route(Fuel, 40, p[0], p[1])
		durs = append(durs, time.Since(start))
		if err != nil {
			b.Fatalf("route %v: %v", p, err)
		}
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p95 := durs[int(0.95*float64(len(durs)-1))]
	b.ReportMetric(float64(p95.Nanoseconds()), "p95-ns")
}

// BenchmarkEcoRouteWarmQueryDijkstra is the unpruned reference search on the
// same warm tables — the denominator of the ALT speedup.
func BenchmarkEcoRouteWarmQueryDijkstra(b *testing.B) {
	net := charlottesville(b)
	eng, err := NewEngine(net, TruthSource{}, Config{})
	if err != nil {
		b.Fatalf("engine: %v", err)
	}
	pairs := benchPairs(eng, 1024)
	if _, err := eng.Route(Fuel, 40, pairs[0][0], pairs[0][1]); err != nil {
		b.Fatalf("prime: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := eng.RouteDijkstra(Fuel, 40, p[0], p[1]); err != nil {
			b.Fatalf("route %v: %v", p, err)
		}
	}
}

// BenchmarkEcoRouteColdQuery pays the full pipeline per query: every edge's
// stamp changes, so the cost tables re-integrate all edges and the fuel
// landmark tables rebuild before the search runs.
func BenchmarkEcoRouteColdQuery(b *testing.B) {
	net := charlottesville(b)
	src := &bumpSource{stampAll: true}
	eng, err := NewEngine(net, src, Config{})
	if err != nil {
		b.Fatalf("engine: %v", err)
	}
	pairs := benchPairs(eng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.gen++
		p := pairs[i%len(pairs)]
		if _, err := eng.Route(Fuel, 40, p[0], p[1]); err != nil {
			b.Fatalf("route %v: %v", p, err)
		}
	}
}

// BenchmarkEcoRouteInvalidate measures one incremental refresh: a single
// road's generation bumps (as one cloud re-fusion would), so the refresh
// scans stamps, re-integrates only that road, rebuilds the fuel landmarks,
// and answers a query.
func BenchmarkEcoRouteInvalidate(b *testing.B) {
	net := charlottesville(b)
	src := &bumpSource{roadID: net.Edges[0].Road.ID()}
	eng, err := NewEngine(net, src, Config{})
	if err != nil {
		b.Fatalf("engine: %v", err)
	}
	pairs := benchPairs(eng, 1024)
	if _, err := eng.Route(Fuel, 40, pairs[0][0], pairs[0][1]); err != nil {
		b.Fatalf("prime: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.gen++
		p := pairs[i%len(pairs)]
		if _, err := eng.Route(Fuel, 40, p[0], p[1]); err != nil {
			b.Fatalf("route %v: %v", p, err)
		}
	}
}

// BenchmarkEmissionRouteQuery is the pollutant-routing acceptance benchmark:
// min-NOx point-to-point queries on warm cost tables (the lazily built
// per-bucket emission rows are primed by the first query). The reported
// p95-ns metric must stay under the same 1 ms bar as the fuel objective —
// pollutant rows ride the identical search machinery, only the edge weights
// differ. scripts/bench.sh snapshots this to BENCH_PR10.json.
func BenchmarkEmissionRouteQuery(b *testing.B) {
	net := charlottesville(b)
	eng, err := NewEngine(net, TruthSource{}, Config{})
	if err != nil {
		b.Fatalf("engine: %v", err)
	}
	pairs := benchPairs(eng, 1024)
	// Prime tables, emission rows, and NOx landmarks.
	if _, err := eng.Route(NOx, 40, pairs[0][0], pairs[0][1]); err != nil {
		b.Fatalf("prime: %v", err)
	}
	durs := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		start := time.Now()
		_, err := eng.Route(NOx, 40, p[0], p[1])
		durs = append(durs, time.Since(start))
		if err != nil {
			b.Fatalf("route %v: %v", p, err)
		}
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p95 := durs[int(0.95*float64(len(durs)-1))]
	b.ReportMetric(float64(p95.Nanoseconds()), "p95-ns")
}

// BenchmarkEmissionRowBuild pays the lazy per-bucket pollutant row build on
// every iteration: the source's generation bumps with every edge stamped, so
// the snapshot rebuilds and the first NOx query re-integrates all four
// pollutant rows over every edge.
func BenchmarkEmissionRowBuild(b *testing.B) {
	net := charlottesville(b)
	src := &bumpSource{stampAll: true}
	eng, err := NewEngine(net, src, Config{})
	if err != nil {
		b.Fatalf("engine: %v", err)
	}
	pairs := benchPairs(eng, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.gen++
		p := pairs[i%len(pairs)]
		if _, err := eng.Route(NOx, 40, p[0], p[1]); err != nil {
			b.Fatalf("route %v: %v", p, err)
		}
	}
}
