package ecoroute

import (
	"container/heap"
	"math"
)

// pqItem is a priority-queue entry: a node keyed by its (possibly
// potential-shifted) tentative distance. Stale entries are skipped on pop.
type pqItem struct {
	node int32
	key  float64
}

type pq []pqItem

func (q pq) Len() int                 { return len(q) }
func (q pq) Less(i, j int) bool       { return q[i].key < q[j].key }
func (q pq) Swap(i, j int)            { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)              { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any                { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
func (q *pq) push(n int32, k float64) { heap.Push(q, pqItem{node: n, key: k}) }

// infSlice returns a +Inf-filled float64 slice of length n.
func infSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	return out
}

// searchDijkstra is plain one-directional Dijkstra from s, stopping once t
// is settled. Returns the edge-index path in travel order.
func (e *Engine) searchDijkstra(cost []float64, s, t int32) ([]int32, bool) {
	n := len(e.ids)
	dist := infSlice(n)
	prev := make([]int32, n)
	done := make([]bool, n)
	for i := range prev {
		prev[i] = -1
	}
	dist[s] = 0
	q := &pq{{node: s, key: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		u := cur.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == t {
			break
		}
		du := dist[u]
		for k := e.outOff[u]; k < e.outOff[u+1]; k++ {
			ei := e.outArc[k]
			v := e.head[ei]
			if done[v] {
				continue
			}
			if nd := du + cost[ei]; nd < dist[v] {
				dist[v] = nd
				prev[v] = ei
				q.push(v, nd)
			}
		}
	}
	if !done[t] {
		return nil, false
	}
	return unwindForward(e.tail, prev, s, t), true
}

// unwindForward walks prev edges from t back to s and reverses into travel
// order.
func unwindForward(tail []int32, prev []int32, s, t int32) []int32 {
	var path []int32
	for at := t; at != s; {
		ei := prev[at]
		if ei < 0 {
			return nil
		}
		path = append(path, ei)
		at = tail[ei]
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// oneToAll runs Dijkstra from src over the given CSR adjacency until the
// queue drains (or, when remain is non-nil, until every flagged target
// settles), writing distances into dist. (off, arcs)/endpoint select the
// direction: (outOff, outArc, head) searches forward from src, (inOff,
// inArc, tail) searches the reverse graph, i.e. distances TO src.
func oneToAll(off, arcs, endpoint []int32, cost []float64, src int32, dist []float64, remain map[int32]bool) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	done := make([]bool, len(dist))
	dist[src] = 0
	left := len(remain)
	q := &pq{{node: src, key: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		u := cur.node
		if done[u] {
			continue
		}
		done[u] = true
		if remain != nil && remain[u] {
			if left--; left == 0 {
				return
			}
		}
		du := dist[u]
		for k := off[u]; k < off[u+1]; k++ {
			ei := arcs[k]
			v := endpoint[ei]
			if done[v] {
				continue
			}
			if nd := du + cost[ei]; nd < dist[v] {
				dist[v] = nd
				q.push(v, nd)
			}
		}
	}
}

// lmKey identifies one landmark distance table: the search metric, the
// speed bucket, and (for grade-dependent metrics) the cost-table version the
// distances were computed on.
type lmKey struct {
	metric  Objective
	bucket  int
	version uint64
}

// landmarkTable holds, for each landmark L: from[L][v] = d(L → v) and
// to[L][v] = d(v → L). The triangle inequality turns them into admissible
// lower bounds for any pair.
type landmarkTable struct {
	from [][]float64
	to   [][]float64
}

// lbTo returns a lower bound on d(v, t): d(L,t) − d(L,v) ≤ d(v,t) and
// d(v,L) − d(t,L) ≤ d(v,t).
func (lt *landmarkTable) lbTo(v, t int32) float64 {
	best := 0.0
	for k := range lt.from {
		if b := lt.from[k][t] - lt.from[k][v]; b > best && !math.IsInf(lt.from[k][v], 1) {
			best = b
		}
		if b := lt.to[k][v] - lt.to[k][t]; b > best && !math.IsInf(lt.to[k][t], 1) {
			best = b
		}
	}
	return best
}

// lbFrom returns a lower bound on d(s, v), symmetrically.
func (lt *landmarkTable) lbFrom(s, v int32) float64 {
	best := 0.0
	for k := range lt.from {
		if b := lt.from[k][v] - lt.from[k][s]; b > best && !math.IsInf(lt.from[k][s], 1) {
			best = b
		}
		if b := lt.to[k][s] - lt.to[k][v]; b > best && !math.IsInf(lt.to[k][v], 1) {
			best = b
		}
	}
	return best
}

// pickLandmarks selects the landmark node set once, by farthest-point
// traversal on the distance metric: well-spread peripheral nodes give the
// tightest triangle bounds. Called with e.lmMu held.
func (e *Engine) pickLandmarks() []int32 {
	if e.lmNodes != nil {
		return e.lmNodes
	}
	k := e.cfg.Landmarks
	if k < 0 {
		e.lmNodes = []int32{}
		return e.lmNodes
	}
	if k > len(e.ids) {
		k = len(e.ids)
	}
	n := len(e.ids)
	minDist := infSlice(n)
	dist := make([]float64, n)
	picked := make([]int32, 0, k)
	cur := int32(0)
	for len(picked) < k {
		picked = append(picked, cur)
		oneToAll(e.outOff, e.outArc, e.head, e.lengthM, cur, dist, nil)
		next, nextD := int32(-1), -1.0
		for v := 0; v < n; v++ {
			if dist[v] < minDist[v] {
				minDist[v] = dist[v]
			}
			if !math.IsInf(minDist[v], 1) && minDist[v] > nextD {
				nextD = minDist[v]
				next = int32(v)
			}
		}
		if next < 0 || nextD <= 0 {
			break // graph exhausted (or a single component smaller than k)
		}
		cur = next
	}
	e.lmNodes = picked
	return picked
}

// landmarksFor returns (building if needed) the landmark distance table for
// a metric and bucket on the given snapshot. Distance and Time metrics never
// invalidate (grades don't affect them); grade-dependent metrics (Fuel and
// the pollutants) are keyed to the snapshot's cost version so only an
// actual cost change rebuilds them.
func (e *Engine) landmarksFor(metric Objective, bucket int, tb *tables) *landmarkTable {
	key := lmKey{metric: metric, bucket: bucket}
	switch {
	case metric == Distance:
		key.bucket = 0 // distance costs are bucket-independent
	case gradeDependent(metric):
		key.version = tb.version
	}
	e.lmMu.Lock()
	defer e.lmMu.Unlock()
	if lt, ok := e.lmCache[key]; ok {
		return lt
	}
	nodes := e.pickLandmarks()
	cost := e.costRow(metric, bucket, tb)
	lt := &landmarkTable{
		from: make([][]float64, len(nodes)),
		to:   make([][]float64, len(nodes)),
	}
	for i, L := range nodes {
		lt.from[i] = make([]float64, len(e.ids))
		lt.to[i] = make([]float64, len(e.ids))
		oneToAll(e.outOff, e.outArc, e.head, cost, L, lt.from[i], nil)
		oneToAll(e.inOff, e.inArc, e.tail, cost, L, lt.to[i], nil)
	}
	obsLandmarkRuns.Inc()
	// Drop superseded grade-dependent tables for this metric and bucket so
	// re-fusions don't accumulate dead versions.
	if gradeDependent(metric) {
		for old := range e.lmCache {
			if old.metric == metric && old.bucket == bucket && old.version != key.version {
				delete(e.lmCache, old)
			}
		}
	}
	e.lmCache[key] = lt
	return lt
}

// potentialScale shrinks ALT potentials by a relative margin so floating-
// point rounding in the landmark distance sums can never push a bound above
// the true distance (which would break optimality in the last ulp). The
// scaled potential stays feasible: reduced costs are a convex combination of
// the raw cost and the unscaled reduced cost, both non-negative.
const potentialScale = 1 - 1e-9

// searchBidirectional is bidirectional Dijkstra with consistent averaged ALT
// potentials pf(v) = ½(lb(v→t) − lb(s→v))·scale, pb = −pf. Forward keys are
// df(v)+pf(v), backward keys db(v)−pf(v); with pf+pb = 0 the searches meet
// with the classic stop rule topF + topB ≥ μ. The found path's cost is
// re-summed in travel order by the caller, so the result is bit-identical to
// plain Dijkstra's.
func (e *Engine) searchBidirectional(cost []float64, lm *landmarkTable, s, t int32) ([]int32, bool) {
	n := len(e.ids)
	pf := func(v int32) float64 {
		if lm == nil || len(lm.from) == 0 {
			return 0
		}
		return 0.5 * potentialScale * (lm.lbTo(v, t) - lm.lbFrom(s, v))
	}

	df, db := infSlice(n), infSlice(n)
	prevF := make([]int32, n) // edge settling v in the forward search
	nextB := make([]int32, n) // edge leading from v toward t in the backward search
	for i := range prevF {
		prevF[i], nextB[i] = -1, -1
	}
	doneF := make([]bool, n)
	doneB := make([]bool, n)

	df[s], db[t] = 0, 0
	qf := &pq{{node: s, key: pf(s)}}
	qb := &pq{{node: t, key: -pf(t)}}

	mu := math.Inf(1)
	meetEdge := int32(-1) // edge (u,v) joining the two trees; -1 + meetNode covers the s==t-free meeting-at-node case
	meetNode := int32(-1)

	relaxF := func(u int32) {
		du := df[u]
		for k := e.outOff[u]; k < e.outOff[u+1]; k++ {
			ei := e.outArc[k]
			v := e.head[ei]
			nd := du + cost[ei]
			if nd < df[v] {
				df[v] = nd
				prevF[v] = ei
				qf.push(v, nd+pf(v))
			}
			if !math.IsInf(db[v], 1) {
				if total := du + cost[ei] + db[v]; total < mu {
					mu = total
					meetEdge = ei
					meetNode = -1
				}
			}
		}
	}
	relaxB := func(u int32) {
		du := db[u]
		for k := e.inOff[u]; k < e.inOff[u+1]; k++ {
			ei := e.inArc[k]
			v := e.tail[ei]
			nd := du + cost[ei]
			if nd < db[v] {
				db[v] = nd
				nextB[v] = ei
				qb.push(v, nd-pf(v))
			}
			if !math.IsInf(df[v], 1) {
				if total := df[v] + cost[ei] + du; total < mu {
					mu = total
					meetEdge = ei
					meetNode = -1
				}
			}
		}
	}

	for qf.Len() > 0 && qb.Len() > 0 {
		topF := (*qf)[0].key
		topB := (*qb)[0].key
		if topF+topB >= mu {
			break
		}
		if topF <= topB {
			cur := heap.Pop(qf).(pqItem)
			u := cur.node
			if doneF[u] {
				continue
			}
			doneF[u] = true
			if doneB[u] && df[u]+db[u] < mu {
				mu = df[u] + db[u]
				meetNode = u
				meetEdge = -1
			}
			relaxF(u)
		} else {
			cur := heap.Pop(qb).(pqItem)
			u := cur.node
			if doneB[u] {
				continue
			}
			doneB[u] = true
			if doneF[u] && df[u]+db[u] < mu {
				mu = df[u] + db[u]
				meetNode = u
				meetEdge = -1
			}
			relaxB(u)
		}
	}
	if math.IsInf(mu, 1) {
		return nil, false
	}

	// Stitch the forward chain, the meeting edge, and the backward chain.
	var joinU, joinV int32
	if meetEdge >= 0 {
		joinU, joinV = e.tail[meetEdge], e.head[meetEdge]
	} else {
		joinU, joinV = meetNode, meetNode
	}
	fwd := unwindForward(e.tail, prevF, s, joinU)
	if fwd == nil && joinU != s {
		return nil, false
	}
	path := fwd
	if meetEdge >= 0 {
		path = append(path, meetEdge)
	}
	for at := joinV; at != t; {
		ei := nextB[at]
		if ei < 0 {
			return nil, false
		}
		path = append(path, ei)
		at = e.head[ei]
	}
	return path, true
}
