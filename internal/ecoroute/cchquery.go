package ecoroute

import "math"

// This file is phase 3 of the CCH (DESIGN.md §13): queries. Point queries
// need no priority queue at all — the upward search space from any node is a
// subset of its elimination-tree ancestor path, so both directions are plain
// ascending sweeps along two root paths, and label order is settled by
// construction (every arc into a path node comes from a lower path node).
// The many-to-many matrix reuses the same sweeps with target buckets.

// cchScratch holds one query's labels, sized to the node count and reset via
// the touched list so a query costs O(search space), not O(n).
type cchScratch struct {
	df, db  []float64 // forward (s→v) / backward (v→t) tentative costs, by rank
	pf, pb  []int32   // arc that settled v in each direction, -1 at the roots
	touched []int32
}

func (e *Engine) cchScratchGet() *cchScratch {
	if s, ok := e.cchPool.Get().(*cchScratch); ok {
		return s
	}
	n := len(e.ids)
	s := &cchScratch{
		df: infSlice(n), db: infSlice(n),
		pf: make([]int32, n), pb: make([]int32, n),
	}
	for i := range s.pf {
		s.pf[i], s.pb[i] = -1, -1
	}
	return s
}

func (e *Engine) cchScratchPut(s *cchScratch) {
	for _, v := range s.touched {
		s.df[v], s.db[v] = math.Inf(1), math.Inf(1)
		s.pf[v], s.pb[v] = -1, -1
	}
	s.touched = s.touched[:0]
	e.cchPool.Put(s)
}

// cchForward sweeps s's root path ascending, relaxing every upward arc. After
// it returns, df is final on the whole path (arcs into a path node all come
// from strictly lower path nodes, which were processed first).
func (g *cch) cchForward(w *cchWeights, sc *cchScratch, su int32) {
	sc.df[su] = 0
	sc.touched = append(sc.touched, su)
	for u := su; u >= 0; u = g.parent[u] {
		du := sc.df[u]
		if math.IsInf(du, 1) {
			continue
		}
		for a := g.upOff[u]; a < g.upOff[u+1]; a++ {
			if nd := du + w.up[a]; nd < sc.df[g.arcHi[a]] {
				v := g.arcHi[a]
				if math.IsInf(sc.df[v], 1) && math.IsInf(sc.db[v], 1) {
					sc.touched = append(sc.touched, v)
				}
				sc.df[v] = nd
				sc.pf[v] = a
			}
		}
	}
}

// cchBackward sweeps t's root path with downward weights, calling visit(u)
// once per path node after db[u] is final (ascending order, same argument as
// the forward sweep). visit sees every node where db is finite.
func (g *cch) cchBackward(w *cchWeights, sc *cchScratch, tu int32, visit func(u int32)) {
	sc.db[tu] = 0
	if math.IsInf(sc.df[tu], 1) {
		sc.touched = append(sc.touched, tu)
	}
	for u := tu; u >= 0; u = g.parent[u] {
		du := sc.db[u]
		if math.IsInf(du, 1) {
			continue
		}
		visit(u)
		for a := g.upOff[u]; a < g.upOff[u+1]; a++ {
			if nd := du + w.dn[a]; nd < sc.db[g.arcHi[a]] {
				v := g.arcHi[a]
				if math.IsInf(sc.df[v], 1) && math.IsInf(sc.db[v], 1) {
					sc.touched = append(sc.touched, v)
				}
				sc.db[v] = nd
				sc.pb[v] = a
			}
		}
	}
}

// searchCCH answers one point query over the customized hierarchy and
// unpacks the shortcut chain into original edge indices in travel order; the
// caller re-sums costs over those edges, so the result is bit-identical to
// the Dijkstra reference's for the same path.
func (e *Engine) searchCCH(metric Objective, bucket int, tb *tables, s, t int32) ([]int32, bool) {
	g := e.cchGraph()
	w := e.cchWeightsFor(metric, bucket, tb)
	defer w.release()
	sc := e.cchScratchGet()
	defer e.cchScratchPut(sc)

	su, tu := g.rank[s], g.rank[t]
	g.cchForward(w, sc, su)
	mu := math.Inf(1)
	meet := int32(-1)
	g.cchBackward(w, sc, tu, func(u int32) {
		if c := sc.df[u] + sc.db[u]; c < mu {
			mu = c
			meet = u
		}
	})
	if meet < 0 {
		return nil, false
	}

	// Forward chain meet→su (collected hi-to-lo, unpacked in reverse), then
	// the backward chain meet→tu.
	var revArcs []int32
	for m := meet; m != su; {
		a := sc.pf[m]
		revArcs = append(revArcs, a)
		m = g.arcLo[a]
	}
	var path []int32
	for i := len(revArcs) - 1; i >= 0; i-- {
		g.unpackUp(w, revArcs[i], &path)
	}
	for m := meet; m != tu; {
		a := sc.pb[m]
		g.unpackDown(w, a, &path)
		m = g.arcLo[a]
	}
	return path, true
}

// unpackUp expands arc a traveled lo→hi into original edges: either the one
// edge the weight came from, or the triangle legs lo→x (down) then x→hi (up).
func (g *cch) unpackUp(w *cchWeights, a int32, out *[]int32) {
	via := w.viaUp[a]
	if via <= -2 {
		*out = append(*out, -2-via)
		return
	}
	g.unpackDown(w, g.triLo[via], out)
	g.unpackUp(w, g.triHi[via], out)
}

// unpackDown expands arc a traveled hi→lo: hi→x (down) then x→lo (up).
func (g *cch) unpackDown(w *cchWeights, a int32, out *[]int32) {
	via := w.viaDn[a]
	if via <= -2 {
		*out = append(*out, -2-via)
		return
	}
	g.unpackDown(w, g.triHi[via], out)
	g.unpackUp(w, g.triLo[via], out)
}

// cchBucketEntry is one target's backward label deposited at a search-space
// node: target column j can be reached from here for cost d.
type cchBucketEntry struct {
	j int32
	d float64
}

// cchMatrix answers the many-to-many grid with the bucket technique: one
// backward sweep per target deposits (column, cost) entries along its root
// path; one forward sweep per source then scans the buckets it meets. Total
// work is O((|S|+|T|)·path + matches) — each endpoint is swept exactly once,
// versus |S| full one-to-alls for the Dijkstra matrix.
func (e *Engine) cchMatrix(metric Objective, bucket int, tb *tables, denseS, denseT []int32, scale float64, cancelled func() error) ([][]float64, error) {
	g := e.cchGraph()
	w := e.cchWeightsFor(metric, bucket, tb)
	defer w.release()
	sc := e.cchScratchGet()
	defer e.cchScratchPut(sc)

	buckets := make([][]cchBucketEntry, len(e.ids))
	for j, t := range denseT {
		if err := cancelled(); err != nil {
			return nil, err
		}
		jj := int32(j)
		g.cchBackward(w, sc, g.rank[t], func(u int32) {
			buckets[u] = append(buckets[u], cchBucketEntry{j: jj, d: sc.db[u]})
		})
		// Reset only this target's backward labels; buckets keep the values.
		for _, v := range sc.touched {
			sc.db[v], sc.pb[v] = math.Inf(1), -1
		}
		sc.touched = sc.touched[:0]
	}

	out := make([][]float64, len(denseS))
	for i, s := range denseS {
		if err := cancelled(); err != nil {
			return nil, err
		}
		row := make([]float64, len(denseT))
		for j := range row {
			row[j] = math.Inf(1)
		}
		su := g.rank[s]
		g.cchForward(w, sc, su)
		for u := su; u >= 0; u = g.parent[u] {
			du := sc.df[u]
			if math.IsInf(du, 1) {
				continue
			}
			for _, ent := range buckets[u] {
				if c := du + ent.d; c < row[ent.j] {
					row[ent.j] = c
				}
			}
		}
		for _, v := range sc.touched {
			sc.df[v], sc.pf[v] = math.Inf(1), -1
		}
		sc.touched = sc.touched[:0]
		if scale != 1 {
			for j := range row {
				if !math.IsInf(row[j], 1) {
					row[j] *= scale
				}
			}
		}
		out[i] = row
	}
	return out, nil
}
