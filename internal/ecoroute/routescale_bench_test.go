package ecoroute

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"roadgrade/internal/road"
)

// The BENCH_PR9 routescale sweep: graph size (1×/10×/100× the paper's
// 164.8 km network, the 100× point being the ≥10⁵-directed-edge country
// scale) × objective (fuel, distance) × engine (alt, cch), plus the
// customization cost pair (full vs generation-tick incremental) and the
// 50×50 many-to-many grids. Networks and engines are built once per process
// and shared across benchmarks — benchmarks run sequentially, so plain maps
// suffice.

var (
	rsNets    = map[int]*road.Network{}
	rsEngines = map[string]*Engine{}
)

func rsNet(b *testing.B, scale int) *road.Network {
	b.Helper()
	if n, ok := rsNets[scale]; ok {
		return n
	}
	net, err := road.GenerateNetwork(1827, road.CountryConfig(float64(scale)))
	if err != nil {
		b.Fatalf("generate %dx network: %v", scale, err)
	}
	rsNets[scale] = net
	return net
}

// rsEngine returns a warmed engine: cost tables, and landmark tables (alt)
// or contraction + fuel/distance customization (cch) are all built before
// any timed loop starts.
func rsEngine(b *testing.B, alg string, scale int) *Engine {
	b.Helper()
	key := fmt.Sprintf("%s/%d", alg, scale)
	if e, ok := rsEngines[key]; ok {
		return e
	}
	net := rsNet(b, scale)
	eng, err := NewEngine(net, TruthSource{}, Config{Algorithm: alg})
	if err != nil {
		b.Fatalf("%s engine at %dx: %v", alg, scale, err)
	}
	prime := [2]int{net.Edges[0].From, net.Edges[len(net.Edges)-1].To}
	for _, obj := range []Objective{Fuel, Distance} {
		if _, err := eng.Route(obj, 40, prime[0], prime[1]); err != nil {
			b.Fatalf("prime %s %s at %dx: %v", alg, obj, scale, err)
		}
	}
	rsEngines[key] = eng
	return eng
}

// rsQuery times warm point queries and reports the p95 latency alongside the
// mean, mirroring BenchmarkEcoRouteWarmQuery's acceptance metric.
func rsQuery(b *testing.B, eng *Engine, obj Objective) {
	b.Helper()
	pairs := benchPairs(eng, 1024)
	durs := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		start := time.Now()
		_, err := eng.Route(obj, 40, p[0], p[1])
		durs = append(durs, time.Since(start))
		if err != nil {
			b.Fatalf("route %v: %v", p, err)
		}
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	b.ReportMetric(float64(durs[int(0.95*float64(len(durs)-1))].Nanoseconds()), "p95-ns")
}

func BenchmarkRouteScaleCCHQuery1x(b *testing.B)   { rsQuery(b, rsEngine(b, AlgCCH, 1), Fuel) }
func BenchmarkRouteScaleCCHQuery10x(b *testing.B)  { rsQuery(b, rsEngine(b, AlgCCH, 10), Fuel) }
func BenchmarkRouteScaleCCHQuery100x(b *testing.B) { rsQuery(b, rsEngine(b, AlgCCH, 100), Fuel) }
func BenchmarkRouteScaleALTQuery1x(b *testing.B)   { rsQuery(b, rsEngine(b, AlgALT, 1), Fuel) }
func BenchmarkRouteScaleALTQuery10x(b *testing.B)  { rsQuery(b, rsEngine(b, AlgALT, 10), Fuel) }
func BenchmarkRouteScaleALTQuery100x(b *testing.B) { rsQuery(b, rsEngine(b, AlgALT, 100), Fuel) }

func BenchmarkRouteScaleCCHQueryDistance100x(b *testing.B) {
	rsQuery(b, rsEngine(b, AlgCCH, 100), Distance)
}
func BenchmarkRouteScaleALTQueryDistance100x(b *testing.B) {
	rsQuery(b, rsEngine(b, AlgALT, 100), Distance)
}

// BenchmarkRouteScaleCCHCustomizeFull100x is the from-scratch customization
// of the fuel metric on the country graph — the denominator of the
// incremental re-customization claim.
func BenchmarkRouteScaleCCHCustomizeFull100x(b *testing.B) {
	eng := rsEngine(b, AlgCCH, 100)
	g := eng.cchGraph()
	tb, err := eng.fresh()
	if err != nil {
		b.Fatalf("tables: %v", err)
	}
	cost := eng.costRow(Fuel, 1, tb)
	// Steady state recycles a retired table's arrays (the engine's freelist);
	// the spare ping-pongs so every op writes into already-faulted memory.
	var spare *cchWeights
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spare = g.customize(cost, tb.edgeGen, tb.version, spare)
	}
}

// BenchmarkRouteScaleCCHRecustomizeTick100x re-customizes after a one-road
// fusion tick: one edge's stamp and cost changed, everything else clean. The
// acceptance bar is ≥5× cheaper than the full pass above.
func BenchmarkRouteScaleCCHRecustomizeTick100x(b *testing.B) {
	eng := rsEngine(b, AlgCCH, 100)
	g := eng.cchGraph()
	tb, err := eng.fresh()
	if err != nil {
		b.Fatalf("tables: %v", err)
	}
	cost := eng.costRow(Fuel, 1, tb)
	old := g.customize(cost, tb.edgeGen, tb.version, nil)
	// A tick that moved one road's estimate: new stamp, new cost.
	nextGen := append([]uint64(nil), tb.edgeGen...)
	nextGen[0]++
	nextCost := append([]float64(nil), cost...)
	nextCost[0] *= 1.5
	// As above: the spare models the engine recycling the table the tick
	// superseded, which is the steady state of generation-keyed re-fusion.
	var spare *cchWeights
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spare, _ = g.recustomize(old, nextCost, nextGen, tb.version+1, spare)
	}
}

func rsMatrixNodes(eng *Engine, n int) []int {
	pairs := benchPairs(eng, n)
	out := make([]int, n)
	for i, p := range pairs {
		out[i] = p[0]
	}
	return out
}

// The fleet-dispatch grids: 50×50 on the country graph, bucket sweeps (cch)
// vs repeated bounded one-to-alls (alt).
func BenchmarkRouteScaleCCHMatrix100x(b *testing.B) {
	eng := rsEngine(b, AlgCCH, 100)
	nodes := rsMatrixNodes(eng, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Matrix(Fuel, 40, nodes, nodes); err != nil {
			b.Fatalf("matrix: %v", err)
		}
	}
}

func BenchmarkRouteScaleALTMatrix100x(b *testing.B) {
	eng := rsEngine(b, AlgALT, 100)
	nodes := rsMatrixNodes(eng, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Matrix(Fuel, 40, nodes, nodes); err != nil {
			b.Fatalf("matrix: %v", err)
		}
	}
}
