package ecoroute

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"roadgrade/internal/fuel"
)

// Matrix answers a batched many-to-many query: the cost from every source to
// every target under the objective, as a [len(sources)][len(targets)] grid
// (+Inf where no path exists). See MatrixCtx for the search strategy.
func (e *Engine) Matrix(obj Objective, speedKmh float64, sources, targets []int) ([][]float64, error) {
	return e.MatrixCtx(context.Background(), obj, speedKmh, sources, targets)
}

// MatrixCtx is Matrix with cancellation: work stops (and ctx.Err() is
// returned) as soon as the context is done, so an abandoned HTTP request
// doesn't keep burning CPU on a grid nobody will read. Under AlgALT each
// source runs one one-to-all search that stops once all targets settle, with
// sources fanned out across a bounded worker pool (the experiment suite's
// parallelFor pattern); cancellation is checked before each source. Under
// AlgCCH the grid runs bucket sweeps over the customized hierarchy
// (cchMatrix), checked per endpoint.
func (e *Engine) MatrixCtx(ctx context.Context, obj Objective, speedKmh float64, sources, targets []int) ([][]float64, error) {
	bucket, err := e.bucketFor(speedKmh)
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("ecoroute: empty matrix query (%d sources, %d targets)", len(sources), len(targets))
	}
	tb, err := e.fresh()
	if err != nil {
		return nil, err
	}
	cost := e.costRow(metricFor(obj), bucket, tb)

	denseT := make([]int32, len(targets))
	targetSet := make(map[int32]bool, len(targets))
	for i, id := range targets {
		d, ok := e.idx[id]
		if !ok {
			return nil, fmt.Errorf("%w %d", ErrUnknownNode, id)
		}
		denseT[i] = int32(d)
		targetSet[int32(d)] = true
	}
	denseS := make([]int32, len(sources))
	for i, id := range sources {
		d, ok := e.idx[id]
		if !ok {
			return nil, fmt.Errorf("%w %d", ErrUnknownNode, id)
		}
		denseS[i] = int32(d)
	}

	scale := 1.0
	if obj == CO2 {
		// The search runs on the fuel row; scale the reported costs.
		scale = fuel.CO2GramsPerGallon
	}
	if e.cfg.Algorithm == AlgCCH {
		return e.cchMatrix(metricFor(obj), bucket, tb, denseS, denseT, scale, ctx.Err)
	}
	out := make([][]float64, len(sources))
	err = parallelFor(len(sources), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		dist := make([]float64, len(e.ids))
		oneToAll(e.outOff, e.outArc, e.head, cost, denseS[i], dist, targetSet)
		row := make([]float64, len(denseT))
		for j, t := range denseT {
			if math.IsInf(dist[t], 1) {
				row[j] = math.Inf(1)
				continue
			}
			row[j] = dist[t] * scale
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parallelFor runs fn(i) for i in [0, n) on a bounded worker pool and
// returns the first error; remaining indices are drained, not executed,
// after a failure. Mirrors internal/experiment's worker pattern.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	done := make(chan struct{})
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed() {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
						close(done)
					}
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}
