package ecoroute

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/emission"
	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

// pollutantObjectives are the four binned-emission routing objectives.
var pollutantObjectives = []Objective{NOx, CO, HC, PM}

// TestMinNOxDivergesFromMinFuel is the divergence claim on a constructed
// diamond: a short steep street versus a longer flat detour, tuned so the
// linear-in-sinθ fuel model prefers the climb while the binned NOx model —
// which jumps two VSP bins on the 8% pitch — prefers the flat detour.
func TestMinNOxDivergesFromMinFuel(t *testing.T) {
	n1 := geo.ENU{E: 0, N: 0}
	n2 := geo.ENU{E: 100, N: math.Sqrt(80000)} // both detour legs exactly 300 m
	n3 := geo.ENU{E: 200, N: 0}
	mk := func(id string, from, to geo.ENU, grades []float64) *road.Road {
		line, err := geo.NewPolyline([]geo.ENU{from, to})
		if err != nil {
			t.Fatalf("polyline: %v", err)
		}
		prof, err := road.NewProfileFromGrades(5, grades, 100)
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		r, err := road.NewRoad(id, line, prof, nil, road.ClassCollector)
		if err != nil {
			t.Fatalf("road %s: %v", id, err)
		}
		return r
	}
	// Direct: 200 m at 0.08 rad (~8%). Detour: 2 × 300 m flat. At 40 km/h
	// (11.11 m/s, low speed class) the climb costs ~2.9× the flat rate in
	// fuel but only needs 1/3 the distance → fuel picks it (0.0118 vs
	// 0.0123 gal); NOx jumps from bin 12 (1.4 g/hr) to bin 15 (5.0 g/hr) on
	// the climb → NOx picks the detour (0.021 vs 0.025 g).
	steep := constGrades(40, 0.08)
	net, err := road.NewNetwork(
		[]road.Node{{ID: 1, Pos: n1}, {ID: 2, Pos: n2}, {ID: 3, Pos: n3}},
		[]*road.Edge{
			{From: 1, To: 3, Road: mk("direct", n1, n3, steep)},
			{From: 1, To: 2, Road: mk("leg12", n1, n2, constGrades(60, 0))},
			{From: 2, To: 3, Road: mk("leg23", n2, n3, constGrades(60, 0))},
		},
	)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{
		SpeedsKmh:        []float64{40},
		ClassSpeedFactor: uniformSpeeds,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	minFuel, err := eng.Route(Fuel, 40, 1, 3)
	if err != nil {
		t.Fatalf("fuel route: %v", err)
	}
	minNOx, err := eng.Route(NOx, 40, 1, 3)
	if err != nil {
		t.Fatalf("nox route: %v", err)
	}
	if len(minFuel.RoadIDs) != 1 || minFuel.RoadIDs[0] != "direct" {
		t.Fatalf("min-fuel route took %v, want the steep direct street", minFuel.RoadIDs)
	}
	if len(minNOx.RoadIDs) != 2 {
		t.Fatalf("min-NOx route took %v, want the flat detour", minNOx.RoadIDs)
	}
	if minNOx.Cost != minNOx.EmisG[emission.NOx] {
		t.Errorf("NOx plan cost %.9g != its EmisG[NOx] %.9g", minNOx.Cost, minNOx.EmisG[emission.NOx])
	}
	// The trade quantified: the NOx route spends more fuel, saves NOx.
	if minNOx.FuelGal <= minFuel.FuelGal {
		t.Errorf("min-NOx route fuel %.6f gal not above min-fuel's %.6f", minNOx.FuelGal, minFuel.FuelGal)
	}
	fuelRouteEmis, err := eng.PlanEmissions(minFuel)
	if err != nil {
		t.Fatalf("PlanEmissions: %v", err)
	}
	if fuelRouteEmis[emission.NOx] <= minNOx.EmisG[emission.NOx] {
		t.Errorf("min-fuel route NOx %.6f g not above min-NOx route's %.6f g",
			fuelRouteEmis[emission.NOx], minNOx.EmisG[emission.NOx])
	}
}

// TestPollutantRoutesBitIdentical is the acceptance property for the new
// objectives: over random O/D pairs, ALT and CCH answers must equal the
// plain Dijkstra reference to the last bit — before AND after an
// incremental generation tick re-fuses one road.
func TestPollutantRoutesBitIdentical(t *testing.T) {
	net, err := road.GenerateNetwork(47, road.NetworkConfig{TargetStreetKM: 12})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	for _, alg := range []string{AlgALT, AlgCCH} {
		src := &tickSource{roadID: net.Edges[0].Road.ID()}
		eng, err := NewEngine(net, src, Config{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s engine: %v", alg, err)
		}
		check := func(tag string) {
			t.Helper()
			rng := rand.New(rand.NewSource(13))
			checked := 0
			for checked < 12 {
				from := net.Nodes[rng.Intn(len(net.Nodes))].ID
				to := net.Nodes[rng.Intn(len(net.Nodes))].ID
				if from == to {
					continue
				}
				for _, obj := range pollutantObjectives {
					fast, errF := eng.Route(obj, 40, from, to)
					ref, errR := eng.RouteDijkstra(obj, 40, from, to)
					if (errF == nil) != (errR == nil) {
						t.Fatalf("%s/%s %s %d→%d: err %v vs %v", alg, tag, obj, from, to, errF, errR)
					}
					if errF != nil {
						if !errors.Is(errF, ErrNoPath) {
							t.Fatalf("%s/%s %s %d→%d: %v", alg, tag, obj, from, to, errF)
						}
						continue
					}
					if math.Float64bits(fast.Cost) != math.Float64bits(ref.Cost) {
						t.Errorf("%s/%s %s %d→%d: cost %.17g != Dijkstra %.17g",
							alg, tag, obj, from, to, fast.Cost, ref.Cost)
					}
				}
				checked++
			}
		}
		check("pre-tick")
		src.gen++
		check("post-tick")
		if alg == AlgCCH {
			st := eng.lastCustStats()
			if st.full {
				t.Errorf("cch post-tick customization ran full instead of incremental: %+v", st)
			}
		}
	}
}

// TestEmissionRowsLazyAndIncremental pins the cost-table contract: pollutant
// rows are not built until a pollutant objective is queried, and after a
// one-road tick the next build copies every unchanged edge from the carried
// snapshot bit-for-bit, re-integrating only the stamped road.
func TestEmissionRowsLazyAndIncremental(t *testing.T) {
	net, err := road.GenerateNetwork(53, road.NetworkConfig{TargetStreetKM: 6})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	tickID := net.Edges[0].Road.ID()
	src := &tickSource{roadID: tickID}
	eng, err := NewEngine(net, src, Config{SpeedsKmh: []float64{40}})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng.Route(Fuel, 40, net.Edges[0].From, net.Edges[len(net.Edges)-1].To); err != nil && !errors.Is(err, ErrNoPath) {
		t.Fatalf("fuel route: %v", err)
	}
	tb1 := eng.cur.p.Load()
	if tb1.emisBuilt[0].Load() {
		t.Fatal("fuel-only query materialized pollutant rows — they must stay lazy")
	}
	rowsBefore := make(map[emission.Pollutant][]float64)
	for _, sp := range emission.Pollutants() {
		rowsBefore[sp] = eng.emissionRow(sp, 0, tb1)
	}
	if !tb1.emisBuilt[0].Load() {
		t.Fatal("emissionRow did not mark the bucket built")
	}

	src.gen++
	tb2, err := eng.fresh()
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	if tb2 == tb1 {
		t.Fatal("tick did not produce a new snapshot")
	}
	if tb2.emisPrev[0] == nil {
		t.Fatal("new snapshot did not carry the built pollutant rows")
	}
	changedEdge := -1
	for _, sp := range emission.Pollutants() {
		after := eng.emissionRow(sp, 0, tb2)
		for i := range after {
			if eng.edges[i].Road.ID() == tickID {
				changedEdge = i
				if after[i] == rowsBefore[sp][i] {
					t.Errorf("%s: ticked road's cost did not change", sp)
				}
				continue
			}
			if math.Float64bits(after[i]) != math.Float64bits(rowsBefore[sp][i]) {
				t.Errorf("%s edge %d: unchanged road's cost moved %.17g → %.17g",
					sp, i, rowsBefore[sp][i], after[i])
			}
		}
	}
	if changedEdge < 0 {
		t.Fatal("ticked road not found among edges")
	}
}

// TestPlanEmissionsMatchesObjectivePlan: for a pollutant-objective plan,
// PlanEmissions must reproduce the plan's own EmisG exactly (same rows,
// same travel-order summation).
func TestPlanEmissionsMatchesObjectivePlan(t *testing.T) {
	net, err := road.GenerateNetwork(59, road.NetworkConfig{TargetStreetKM: 6})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := NewEngine(net, TruthSource{}, Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for tries := 0; tries < 50; tries++ {
		from := net.Nodes[rng.Intn(len(net.Nodes))].ID
		to := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		p, err := eng.Route(CO, 40, from, to)
		if errors.Is(err, ErrNoPath) {
			continue
		}
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		got, err := eng.PlanEmissions(p)
		if err != nil {
			t.Fatalf("PlanEmissions: %v", err)
		}
		if got != p.EmisG {
			t.Fatalf("PlanEmissions %v != plan EmisG %v", got, p.EmisG)
		}
		if p.EmisG[emission.CO] != p.Cost {
			t.Fatalf("CO plan cost %v != EmisG[CO] %v", p.Cost, p.EmisG[emission.CO])
		}
		return
	}
	t.Skip("no routable pair found")
}
