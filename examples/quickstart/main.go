// Quickstart: simulate a phone riding along the paper's 2.16 km evaluation
// route, estimate the road gradient from the four velocity sources, fuse the
// tracks, and compare against the §III-D reference profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"roadgrade/internal/core"
	"roadgrade/internal/fusion"
	"roadgrade/internal/groundtruth"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The road: Table III's seven-section route with alternating
	//    uphill/downhill stretches and 1-2 lanes.
	r, err := road.RedRoute()
	if err != nil {
		return err
	}

	// 2. A driver cruising at 40 km/h who occasionally changes lanes.
	driver := vehicle.DefaultDriver(40.0 / 3.6)
	driver.LaneChangesPerKm = 2
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:   r,
		Driver: driver,
		Rng:    rand.New(rand.NewSource(42)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("drove %.2f km in %.0f s with %d lane changes\n",
		r.Length()/1000, trip.Duration(), len(trip.Changes))

	// 3. The smartphone: sample every sensor with realistic noise.
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(43)))
	if err != nil {
		return err
	}

	// 4. The estimation pipeline: coordinate alignment, lane-change
	//    detection + Eq. (2) correction, then one EKF gradient track per
	//    velocity source (GPS, speedometer, accelerometer, CAN bus).
	pipeline, err := core.NewPipeline(core.Config{})
	if err != nil {
		return err
	}
	adj, err := pipeline.Adjust(trace, r.Line())
	if err != nil {
		return err
	}
	fmt.Printf("detected %d lane changes during data adjustment\n", len(adj.Detections))

	tracks, err := pipeline.EstimateAll(trace, r.Line())
	if err != nil {
		return err
	}

	// 5. Track fusion (Eq. 6) onto a 5 m grid.
	profile, err := fusion.FuseTracks(tracks, 5, r.Length())
	if err != nil {
		return err
	}

	// 6. Score against the §III-D reference profile.
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(44)))
	if err != nil {
		return err
	}
	var sumAbs, maxAbs float64
	var n int
	for i := range profile.S {
		s := profile.S[i]
		if s < 100 || s > ref.Length() {
			continue
		}
		errDeg := math.Abs(profile.GradeRad[i]-ref.GradeAvgAt(s, 5)) * 180 / math.Pi
		sumAbs += errDeg
		maxAbs = math.Max(maxAbs, errDeg)
		n++
	}
	fmt.Printf("fused gradient profile: mean |error| %.3f deg, max %.3f deg over %d cells\n",
		sumAbs/float64(n), maxAbs, n)

	// Print a short excerpt of the profile.
	fmt.Println("\n  s (m)   est (deg)   true (deg)")
	for s := 200.0; s <= 2000; s += 300 {
		fmt.Printf("  %5.0f   %+8.2f   %+9.2f\n",
			s, profile.GradeAt(s)*180/math.Pi, r.GradeAt(s)*180/math.Pi)
	}
	return nil
}
