// Streaming estimation: the online API a phone app would use. Sensor records
// are pushed one at a time as the drive happens; the estimator reports the
// live gradient under the wheels. (The batch pipeline remains the accurate
// post-drive path — it smooths in both directions and fuses four sources.)
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"roadgrade/internal/core"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "streaming: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	r, err := road.RedRoute()
	if err != nil {
		return err
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:   r,
		Driver: vehicle.DefaultDriver(40.0 / 3.6),
		Rng:    rand.New(rand.NewSource(7)),
	})
	if err != nil {
		return err
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(8)))
	if err != nil {
		return err
	}

	// One causal filter on the CAN-bus speed (the best single source).
	stream, err := core.NewStreaming(core.Config{}, r.Line(), sensors.SourceCANBus, trace.DT)
	if err != nil {
		return err
	}

	fmt.Println("   t (s)    s (m)   live grade   true grade   error")
	nextPrint := 10.0
	var sumErr float64
	var n int
	for i, rec := range trace.Records {
		est, err := stream.Push(rec)
		if err != nil {
			return err
		}
		truth := r.GradeAt(trace.Truth[i].S)
		if rec.T > 20 { // after convergence
			sumErr += math.Abs(est.GradeRad-truth) * 180 / math.Pi
			n++
		}
		if rec.T >= nextPrint {
			nextPrint += 20
			fmt.Printf("  %6.1f   %6.0f   %+9.2f°   %+9.2f°   %5.2f°\n",
				rec.T, est.S,
				est.GradeRad*180/math.Pi,
				truth*180/math.Pi,
				math.Abs(est.GradeRad-truth)*180/math.Pi)
		}
	}
	fmt.Printf("\nlive (causal, single-source) mean |error| after convergence: %.3f deg\n",
		sumErr/float64(n))
	fmt.Println("run examples/quickstart for the batch pipeline (two-pass + 4-source fusion)")
	return nil
}
