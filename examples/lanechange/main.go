// Lane-change detection walkthrough: calibrate the (δ, T) bump thresholds
// from a simulated ten-driver steering study (the Table I procedure), then
// detect maneuvers on a two-lane drive and show how the Eq. (1) horizontal
// displacement rejects an S-curve that produces similar steering bumps.
//
//	go run ./examples/lanechange
package main

import (
	"fmt"
	"math/rand"
	"os"

	"roadgrade/internal/experiment"
	"roadgrade/internal/frame"
	"roadgrade/internal/lanechange"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lanechange example: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Calibrate thresholds from the driver study.
	cal, err := experiment.CalibrateFromStudy(7)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated thresholds from %d drivers: delta=%.4f rad/s, T=%.2f s\n",
		len(cal.Drivers), cal.Thresholds.DeltaRad, cal.Thresholds.TMinS)

	detector := lanechange.NewDetector(lanechange.Config{Thresholds: cal.Thresholds})

	// 2. A two-lane drive with real lane changes.
	r, err := road.StraightRoad("demo", 2500, road.Deg(1), 2)
	if err != nil {
		return err
	}
	driver := vehicle.DefaultDriver(45.0 / 3.6)
	driver.LaneChangesPerKm = 3
	dets, truth, err := detectOnRoad(detector, r, driver, 11)
	if err != nil {
		return err
	}
	fmt.Printf("\ntwo-lane drive: %d true lane changes, %d detections\n", truth, len(dets))
	for _, d := range dets {
		fmt.Printf("  %-5v t=%6.1f..%6.1f s  W=%+.2f m\n", d.Dir, d.StartT, d.EndT, d.DisplacementM)
	}

	// 3. The S-curve trap: similar bumps, but the displacement test rejects.
	sc, err := road.SCurveRoad(0, 0)
	if err != nil {
		return err
	}
	scDets, _, err := detectOnRoad(detector, sc, vehicle.DefaultDriver(40.0/3.6), 12)
	if err != nil {
		return err
	}
	fmt.Printf("\nS-curve drive: %d detections (want 0 — rejected by W > 3*%.2f m)\n",
		len(scDets), vehicle.WLaneM)
	return nil
}

// detectOnRoad simulates a drive and runs the detector over the derived
// steering-rate profile.
func detectOnRoad(det *lanechange.Detector, r *road.Road, driver vehicle.DriverProfile, seed int64) ([]lanechange.Detection, int, error) {
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:   r,
		Driver: driver,
		Rng:    rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, 0, err
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, 0, err
	}
	est, err := frame.NewSteeringEstimator(r.Line(), 0)
	if err != nil {
		return nil, 0, err
	}
	gyro := make([]float64, len(trace.Records))
	speed := make([]float64, len(trace.Records))
	for i, rec := range trace.Records {
		gyro[i] = rec.GyroYaw
		speed[i] = rec.Speedometer
	}
	steer, err := est.SteerRates(trace.DT, gyro, speed)
	if err != nil {
		return nil, 0, err
	}
	dets, err := det.Detect(trace.DT, steer, speed)
	if err != nil {
		return nil, 0, err
	}
	return dets, len(trip.Changes), nil
}
