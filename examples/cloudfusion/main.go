// Cloud fusion: several vehicles drive the same road, each estimates its own
// gradient profile, uploads it to the cloud fusion service over HTTP, and
// the fused profile beats every individual vehicle — the crowd-sourcing
// story at the end of §III-C3.
//
//	go run ./examples/cloudfusion
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"

	"roadgrade/internal/cloud"
	"roadgrade/internal/core"
	"roadgrade/internal/fusion"
	"roadgrade/internal/groundtruth"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cloudfusion: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Spin up the fusion service (in-process; `cloudfuse` runs the same
	// handler as a standalone daemon).
	srv := httptest.NewServer(cloud.NewServer().Handler())
	defer srv.Close()
	client, err := cloud.NewClient(srv.URL, srv.Client())
	if err != nil {
		return err
	}
	ctx := context.Background()

	r, err := road.RedRoute()
	if err != nil {
		return err
	}
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(99)))
	if err != nil {
		return err
	}
	pipeline, err := core.NewPipeline(core.Config{})
	if err != nil {
		return err
	}

	meanErr := func(p *fusion.Profile) float64 {
		var sum float64
		var n int
		for i := range p.S {
			if p.S[i] < 100 || p.S[i] > ref.Length() {
				continue
			}
			sum += math.Abs(p.GradeRad[i]-ref.GradeAvgAt(p.S[i], 5)) * 180 / math.Pi
			n++
		}
		return sum / float64(n)
	}

	// Five vehicles with different drivers drive the road and upload.
	const roadID = "red-route"
	for v := 0; v < 5; v++ {
		driver := vehicle.DefaultDriver((35 + 3*float64(v)) / 3.6)
		driver.LaneChangesPerKm = 1.5
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: driver, Rng: rand.New(rand.NewSource(int64(100 + v))),
		})
		if err != nil {
			return err
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(int64(200+v))))
		if err != nil {
			return err
		}
		tracks, err := pipeline.EstimateAll(trc, r.Line())
		if err != nil {
			return err
		}
		prof, err := fusion.FuseTracks(tracks, 5, r.Length())
		if err != nil {
			return err
		}
		if err := client.SubmitProfile(ctx, roadID, prof); err != nil {
			return err
		}
		fmt.Printf("vehicle %d uploaded: mean |error| %.3f deg\n", v+1, meanErr(prof))
	}

	fused, err := client.FetchProfile(ctx, roadID)
	if err != nil {
		return err
	}
	fmt.Printf("\ncloud-fused profile over 5 vehicles: mean |error| %.3f deg\n", meanErr(fused))

	roads, err := client.ListRoads(ctx)
	if err != nil {
		return err
	}
	for _, rs := range roads {
		fmt.Printf("service state: road %q has %d submissions\n", rs.RoadID, rs.Submissions)
	}
	return nil
}
