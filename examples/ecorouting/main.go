// Eco-routing: the application the paper motivates. Once road gradients are
// known, fuel per road is predictable, and route planning can minimize
// gallons instead of meters. This example compares the shortest route with
// the fuel-optimal route across the synthetic city.
//
//	go run ./examples/ecorouting
package main

import (
	"fmt"
	"os"

	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
	"roadgrade/internal/route"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ecorouting: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	net, err := road.GenerateNetwork(4242, road.NetworkConfig{TargetStreetKM: 30})
	if err != nil {
		return err
	}
	params := fuel.TableII()
	const speedMS = 40.0 / 3.6

	// Route diagonally across the grid.
	from := net.Nodes[0].ID
	to := net.Nodes[len(net.Nodes)-1].ID

	shortest, err := route.Shortest(net, from, to, route.DistanceCost)
	if err != nil {
		return err
	}
	eco, err := route.Shortest(net, from, to, route.FuelCost(speedMS, fuel.TrueGrade, params))
	if err != nil {
		return err
	}

	shortFuel, err := shortest.FuelGallons(speedMS, fuel.TrueGrade, params)
	if err != nil {
		return err
	}
	ecoFuel, err := eco.FuelGallons(speedMS, fuel.TrueGrade, params)
	if err != nil {
		return err
	}

	fmt.Printf("city: %.1f km of streets; routing node %d -> node %d at 40 km/h\n\n",
		net.TotalLengthM()/1000, from, to)
	fmt.Printf("%-16s %8s %10s %8s\n", "route", "roads", "length", "fuel")
	fmt.Printf("%-16s %8d %8.2f km %7.4f gal\n", "shortest", len(shortest.Edges),
		shortest.LengthM()/1000, shortFuel)
	fmt.Printf("%-16s %8d %8.2f km %7.4f gal\n", "fuel-optimal", len(eco.Edges),
		eco.LengthM()/1000, ecoFuel)

	if ecoFuel < shortFuel {
		saved := (shortFuel - ecoFuel) / shortFuel * 100
		extra := (eco.LengthM() - shortest.LengthM()) / shortest.LengthM() * 100
		fmt.Printf("\nthe eco route saves %.1f%% fuel for %.1f%% extra distance\n", saved, extra)
	} else {
		fmt.Println("\nthe shortest route is already fuel-optimal on this city/seed")
	}

	// What if the planner ignored gradients? It would pick a route that
	// looks cheap on paper but burns more in the real (hilly) city.
	flatPlanned, err := route.Shortest(net, from, to, route.FuelCost(speedMS, fuel.FlatGrade, params))
	if err != nil {
		return err
	}
	flatActual, err := flatPlanned.FuelGallons(speedMS, fuel.TrueGrade, params)
	if err != nil {
		return err
	}
	fmt.Printf("flat-planner route actually burns %.4f gal (%.1f%% worse than gradient-aware)\n",
		flatActual, (flatActual-ecoFuel)/ecoFuel*100)

	// Eco-speed: the best cruise speed differs per road with its gradient.
	fmt.Println("\nbest cruise speed per road on the eco route (first three):")
	for _, e := range eco.Edges[:min(3, len(eco.Edges))] {
		best, err := fuel.OptimalCruise(e.Road, fuel.TrueGrade, params, 20, 110)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s grade-aware optimum %3.0f km/h at %.4f gal/km\n",
			e.Road.ID(), best.SpeedKmh, best.GallonsPerKm)
	}
	return nil
}
