// City fuel and emission maps (the Figure 10 application): evaluate the VSP
// fuel model over every street of the synthetic city at 40 km/h with and
// without road gradients, then combine per-vehicle fuel with AADT traffic
// volumes into CO₂ emission densities.
//
//	go run ./examples/cityfuel
package main

import (
	"fmt"
	"math"
	"os"
	"sort"

	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cityfuel: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A small city to keep the example fast; swap for road.Charlottesville()
	// to reproduce the full 164.8 km map.
	net, err := road.GenerateNetwork(1827, road.NetworkConfig{TargetStreetKM: 25})
	if err != nil {
		return err
	}
	params := fuel.TableII()
	const speedMS = 40.0 / 3.6

	fuels, err := fuel.NetworkFuel(net, speedMS, fuel.TrueGrade, params)
	if err != nil {
		return err
	}
	uplift, err := fuel.FuelUplift(net, speedMS, fuel.TrueGrade, params)
	if err != nil {
		return err
	}
	fmt.Printf("network: %.1f km of streets, %d directed roads\n",
		net.TotalLengthM()/1000, len(net.Edges))
	fmt.Printf("fuel estimate increase when considering gradient: %.1f%% (paper: 33.4%%)\n\n",
		uplift*100)

	// The Figure 10(a) story: the thirstiest roads are the steepest ones.
	sort.Slice(fuels, func(i, j int) bool { return fuels[i].MeanGPH > fuels[j].MeanGPH })
	fmt.Println("top five fuel-hungry roads (gal/h at 40 km/h):")
	for _, f := range fuels[:5] {
		fmt.Printf("  %-12s %5.2f gal/h  mean grade %+5.2f deg  (%s)\n",
			f.RoadID, f.MeanGPH, f.MeanGradeDeg, f.Class)
	}

	// Figure 10(b): emission density needs traffic volume, not just grade.
	emissions, err := fuel.NetworkEmissions(fuels, speedMS, fuel.CO2GramsPerGallon, 99)
	if err != nil {
		return err
	}
	sort.Slice(emissions, func(i, j int) bool { return emissions[i].TonPerKmHour > emissions[j].TonPerKmHour })
	fmt.Println("\ntop five CO2 emission densities (ton/km/hour):")
	for _, e := range emissions[:5] {
		fmt.Printf("  %-12s %6.4f ton/km/h  AADT %6.0f  (%s)\n",
			e.RoadID, e.TonPerKmHour, e.AADT, e.Class)
	}

	// A single-vehicle sanity number: gallons for one hilly crossing.
	var worstGrade float64
	for _, f := range fuels {
		worstGrade = math.Max(worstGrade, math.Abs(f.MeanGradeDeg))
	}
	fmt.Printf("\nsteepest street mean |grade|: %.2f deg\n", worstGrade)
	return nil
}
