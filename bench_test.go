// Package roadgrade's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§IV). Each benchmark runs the full-size
// workload and prints the reproduced rows once, so
//
//	go test -bench=. -benchmem
//
// emits the complete paper-vs-measured artifact set. DESIGN.md §3 maps the
// benchmark names to paper artifacts; EXPERIMENTS.md records the comparison.
package roadgrade

import (
	"fmt"
	"sync"
	"testing"

	"roadgrade/internal/experiment"
)

// fullOpt runs experiments at paper scale (the 164.8 km network for the
// Figure 9/10 family); quickOpt is used by the heaviest baselines sweep so
// `go test -bench=. ./...` stays in CI budget.
var fullOpt = experiment.Options{Seed: 1}

// printOnce deduplicates table output across benchmark iterations.
var printOnce sync.Map

func runExperiment(b *testing.B, name string, opt experiment.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := experiment.Run(name, opt)
		if err != nil {
			b.Fatalf("experiment %s: %v", name, err)
		}
		if _, done := printOnce.LoadOrStore(name, true); !done {
			fmt.Printf("\n%s\n", t.String())
		}
	}
}

// BenchmarkTableI regenerates Table I (bump features of the driver study).
func BenchmarkTableI(b *testing.B) { runExperiment(b, "table1", fullOpt) }

// BenchmarkTableII regenerates Table II (vehicle parameters).
func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2", fullOpt) }

// BenchmarkTableIII regenerates Table III (red-route sections).
func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3", fullOpt) }

// BenchmarkFigure3 regenerates Figure 3 (raw steering-rate profiles).
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3", fullOpt) }

// BenchmarkFigure4 regenerates Figure 4 (smoothed profiles + bump features).
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4", fullOpt) }

// BenchmarkFigure5 regenerates Figure 5 (lane change vs S-curve
// displacement).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5", fullOpt) }

// BenchmarkFigure8a regenerates Figure 8(a) (red-route error vs position,
// OPS vs EKF vs ANN, with MREs).
func BenchmarkFigure8a(b *testing.B) { runExperiment(b, "fig8a", fullOpt) }

// BenchmarkFigure8b regenerates Figure 8(b) (error CDFs vs fused tracks).
func BenchmarkFigure8b(b *testing.B) { runExperiment(b, "fig8b", fullOpt) }

// BenchmarkFigure9a regenerates Figure 9(a) (city-network gradient map and
// MRE) on the full 164.8 km workload.
func BenchmarkFigure9a(b *testing.B) { runExperiment(b, "fig9a", fullOpt) }

// BenchmarkFigure9b regenerates Figure 9(b) (large-scale error CDFs).
func BenchmarkFigure9b(b *testing.B) { runExperiment(b, "fig9b", fullOpt) }

// BenchmarkFigure10a regenerates Figure 10(a) (city fuel map).
func BenchmarkFigure10a(b *testing.B) { runExperiment(b, "fig10a", fullOpt) }

// BenchmarkFigure10b regenerates Figure 10(b) (CO₂ emission map).
func BenchmarkFigure10b(b *testing.B) { runExperiment(b, "fig10b", fullOpt) }

// BenchmarkLaneChangeAccuracy quantifies the Algorithm 1 detector
// (precision/recall/direction, S-curve rejection).
func BenchmarkLaneChangeAccuracy(b *testing.B) { runExperiment(b, "lanechange", fullOpt) }

// BenchmarkHeadline regenerates the abstract's error-reduction claim.
func BenchmarkHeadline(b *testing.B) { runExperiment(b, "headline", fullOpt) }

// BenchmarkFuelUplift regenerates the +33.4% fuel/emission uplift claim.
func BenchmarkFuelUplift(b *testing.B) { runExperiment(b, "uplift", fullOpt) }

// Extension studies beyond the paper's artifacts (DESIGN.md §3).

// BenchmarkAblation quantifies each design component by removing it.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation", fullOpt) }

// BenchmarkMisalignment runs the §III-A mount-misalignment study.
func BenchmarkMisalignment(b *testing.B) { runExperiment(b, "misalignment", fullOpt) }

// BenchmarkMultiVehicle runs the cloud-level multi-vehicle fusion sweep.
func BenchmarkMultiVehicle(b *testing.B) { runExperiment(b, "multivehicle", fullOpt) }

// BenchmarkRobustness runs the sensor failure-injection sweep.
func BenchmarkRobustness(b *testing.B) { runExperiment(b, "robustness", fullOpt) }

// BenchmarkSpeedSweep measures accuracy across the 15-65 km/h range.
func BenchmarkSpeedSweep(b *testing.B) { runExperiment(b, "speedsweep", fullOpt) }

// BenchmarkJourney drives one continuous multi-street route with junction
// turns and traffic-light stops.
func BenchmarkJourney(b *testing.B) { runExperiment(b, "journey", fullOpt) }

// BenchmarkRouting plans routes on estimated vs true gradients and measures
// the fuel regret.
func BenchmarkRouting(b *testing.B) { runExperiment(b, "routing", fullOpt) }
