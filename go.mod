module roadgrade

go 1.24
